package experiments

// Cluster scaling experiment: the same fixed-seed stress campaign executed
// on multi-worker disard clusters of increasing size. On one CPU the
// speedup is made observable the same way the elastic experiments make
// queueing observable — PaceFactor turns each job's simulated execution
// time into wall-clock occupancy, which remote workers hold CONCURRENTLY
// for their slices. A worker process holding its slice's pace share while
// another holds its own is exactly the overlap a real multi-machine cluster
// gets from distribution, so campaign wall-clock shrinks near-linearly in
// the worker count while every valuation stays bit-identical.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"disarcloud/internal/cluster"
	"disarcloud/internal/core"
)

// ClusterScalingPoint is one cluster size's measurement.
type ClusterScalingPoint struct {
	Workers int
	// Wall is the campaign's submission-to-result wall-clock.
	Wall time.Duration
	// Throughput is jobs per second (a standard-formula campaign is eight).
	Throughput float64
	// Speedup is relative to the one-worker point.
	Speedup float64
	// Slices is how many slices the coordinator shipped.
	Slices int64
}

// ClusterComparison is the scaling record plus the fault-path probe: the
// same campaign with a worker killed mid-run, checked bit-identical.
type ClusterComparison struct {
	Points []ClusterScalingPoint
	// KillWorkers is the cluster size of the kill run.
	KillWorkers int
	// KillIdentical reports whether the kill run reproduced the one-worker
	// campaign bit for bit.
	KillIdentical bool
	// KillFailures and KillReslices are the fault path's counters.
	KillFailures int64
	KillReslices int64
}

// clusterCampaignSpec is the fixed campaign every cluster size runs: the
// elastic experiments' small workload with a pace factor large enough that
// occupancy, not local compute, dominates the wall-clock.
// clusterPaceFactor sizes each job's wall-clock occupancy: roughly half a
// second per job — large against the per-slice transport overhead (a few
// ms), small enough that the whole 1..8 sweep stays under ten seconds. A
// variable so the short test sweep can shrink it.
var clusterPaceFactor = 6e-2

func clusterCampaignSpec(seed uint64) core.SimulationSpec {
	spec := elasticBaseSpec(seed)
	spec.PaceFactor = clusterPaceFactor
	return spec
}

// clusterFixture is one running cluster: a coordinator on a real TCP
// listener plus n single-slot workers joined to it.
type clusterFixture struct {
	coord   *cluster.Coordinator
	workers []*cluster.Worker
	srv     *httptest.Server
}

func startCluster(n int) (*clusterFixture, error) {
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		HeartbeatEvery: 100 * time.Millisecond,
	})
	mux := http.NewServeMux()
	coord.Routes(mux)
	srv := httptest.NewServer(mux)
	f := &clusterFixture{coord: coord, srv: srv}
	for i := 0; i < n; i++ {
		w := cluster.NewWorker(fmt.Sprintf("x%d", i), 1)
		if err := w.Start("127.0.0.1:0"); err != nil {
			f.close()
			return nil, err
		}
		if err := w.Join(context.Background(), srv.URL); err != nil {
			f.close()
			return nil, err
		}
		f.workers = append(f.workers, w)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.coord.Status().LiveWorkers < n {
		if time.Now().After(deadline) {
			f.close()
			return nil, fmt.Errorf("experiments: only %d of %d workers joined", f.coord.Status().LiveWorkers, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return f, nil
}

func (f *clusterFixture) close() {
	for _, w := range f.workers {
		w.Close()
	}
	f.srv.Close()
}

// runClusterCampaign executes the fixed campaign on an n-worker cluster and
// returns the report, the wall-clock, and the coordinator's final counters.
// killOne closes one worker as soon as slices start flowing.
func runClusterCampaign(seed uint64, n int, killOne bool) (*core.CampaignReport, time.Duration, cluster.Status, error) {
	f, err := startCluster(n)
	if err != nil {
		return nil, 0, cluster.Status{}, err
	}
	defer f.close()
	d, err := core.NewDeployer(seed, core.WithBlockRunner(f.coord))
	if err != nil {
		return nil, 0, cluster.Status{}, err
	}
	svc, err := core.NewService(d, core.WithWorkers(8), core.WithQueueDepth(64))
	if err != nil {
		return nil, 0, cluster.Status{}, err
	}
	defer svc.Close()
	if killOne {
		go func() {
			deadline := time.Now().Add(10 * time.Second)
			for f.coord.Status().SlicesDispatched == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			f.workers[0].Close()
		}()
	}
	ctx := context.Background()
	start := time.Now()
	id, err := svc.SubmitCampaign(ctx, core.CampaignSpec{Base: clusterCampaignSpec(seed)})
	if err != nil {
		return nil, 0, cluster.Status{}, err
	}
	rep, err := svc.CampaignResult(ctx, id)
	if err != nil {
		return nil, 0, cluster.Status{}, err
	}
	return rep, time.Since(start), f.coord.Status(), nil
}

// sameCampaignReport compares the valuation content of two campaign reports
// bit for bit.
func sameCampaignReport(a, b *core.CampaignReport) bool {
	if a.BaseBEL != b.BaseBEL || a.BaseVaRSCR != b.BaseVaRSCR || a.SCR != b.SCR {
		return false
	}
	if len(a.Modules) != len(b.Modules) {
		return false
	}
	for i := range a.Modules {
		if a.Modules[i].Module != b.Modules[i].Module || a.Modules[i].DeltaBEL != b.Modules[i].DeltaBEL {
			return false
		}
	}
	return true
}

// RunClusterComparison measures the fixed campaign's wall-clock on clusters
// of each given size (e.g. 1..8), then re-runs it on killWorkers workers
// with one killed mid-campaign and checks the outcome against the
// one-worker run bit for bit. The first entry of workerCounts is the
// speedup baseline.
func RunClusterComparison(seed uint64, workerCounts []int, killWorkers int) (*ClusterComparison, error) {
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("experiments: no cluster sizes given")
	}
	out := &ClusterComparison{KillWorkers: killWorkers}
	var baseRep *core.CampaignReport
	var baseWall time.Duration
	for i, n := range workerCounts {
		rep, wall, st, err := runClusterCampaign(seed, n, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: cluster n=%d: %w", n, err)
		}
		if i == 0 {
			baseRep, baseWall = rep, wall
		} else if !sameCampaignReport(rep, baseRep) {
			return nil, fmt.Errorf("experiments: cluster n=%d changed the campaign outcome", n)
		}
		jobs := float64(len(rep.Modules) + 1)
		out.Points = append(out.Points, ClusterScalingPoint{
			Workers:    n,
			Wall:       wall,
			Throughput: jobs / wall.Seconds(),
			Speedup:    baseWall.Seconds() / wall.Seconds(),
			Slices:     st.SlicesDispatched,
		})
	}
	if killWorkers > 1 {
		rep, _, st, err := runClusterCampaign(seed, killWorkers, true)
		if err != nil {
			return nil, fmt.Errorf("experiments: kill run: %w", err)
		}
		out.KillIdentical = sameCampaignReport(rep, baseRep)
		out.KillFailures = st.SliceFailures
		out.KillReslices = st.Reslices
	}
	return out, nil
}

// Print renders the scaling table and the fault-path probe.
func (c *ClusterComparison) Print(w io.Writer) {
	fmt.Fprintln(w, "Cluster scaling: fixed-seed stress campaign on N-worker disard clusters")
	fmt.Fprintln(w, "  N   wall        jobs/s   speedup   slices")
	for _, p := range c.Points {
		fmt.Fprintf(w, "  %-3d %-11s %-8.2f %-9.2f %d\n",
			p.Workers, p.Wall.Round(time.Millisecond), p.Throughput, p.Speedup, p.Slices)
	}
	if c.KillWorkers > 1 {
		verdict := "BIT-IDENTICAL"
		if !c.KillIdentical {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(w, "  worker killed mid-campaign on N=%d: %s (%d failed slices re-sliced into %d)\n",
			c.KillWorkers, verdict, c.KillFailures, c.KillReslices)
	}
}
