package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"disarcloud/internal/cloud"
	"disarcloud/internal/core"
	"disarcloud/internal/eeb"
	"disarcloud/internal/finmath"
	"disarcloud/internal/kb"
	"disarcloud/internal/provision"
)

// EnsembleAblation compares each single learner's accuracy against the
// across-model average — the design choice Section III motivates ("this
// allows to reduce the impact of prediction errors by some of the models").
type EnsembleAblation struct {
	// MAE per model name, pooled across architectures; "Ensemble" is the
	// averaged predictor.
	MAE map[string]float64
	// WorstSingle is the highest single-model MAE.
	WorstSingle float64
}

// EvaluateEnsembleAblation reuses the Table I splits.
func EvaluateEnsembleAblation(k *kb.KB, seed uint64) (*EnsembleAblation, error) {
	res, err := EvaluateAccuracy(k, seed, 0.4)
	if err != nil {
		return nil, err
	}
	out := &EnsembleAblation{MAE: make(map[string]float64)}
	for name, pairs := range res.Pairs {
		sum := 0.0
		for _, p := range pairs {
			sum += math.Abs(p[1] - p[0])
		}
		mae := sum / float64(len(pairs))
		out.MAE[name] = mae
		if mae > out.WorstSingle {
			out.WorstSingle = mae
		}
	}
	sum := 0.0
	for _, e := range res.EnsembleErrors {
		sum += math.Abs(e)
	}
	out.MAE["Ensemble"] = sum / float64(len(res.EnsembleErrors))
	return out, nil
}

// Print writes the ablation rows, ensemble last.
func (a *EnsembleAblation) Print(w io.Writer) {
	fmt.Fprintln(w, "ABLATION: single models vs prediction-averaging ensemble (pooled MAE, seconds)")
	names := make([]string, 0, len(a.MAE))
	for n := range a.MAE {
		if n != "Ensemble" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-10s %8.1f\n", n, a.MAE[n])
	}
	fmt.Fprintf(w, "%-10s %8.1f\n", "Ensemble", a.MAE["Ensemble"])
}

// EpsilonAblation measures what exploration buys: the number of distinct
// (architecture, nodes) configurations present in the knowledge base after
// identical campaigns run with different epsilon values.
type EpsilonAblation struct {
	Epsilons        []float64
	DistinctConfigs []int
	MeanCostUSD     []float64
}

// EvaluateEpsilonAblation runs one fresh small campaign per epsilon.
func EvaluateEpsilonAblation(seed uint64, epsilons []float64, runs int) (*EpsilonAblation, error) {
	out := &EpsilonAblation{Epsilons: epsilons}
	for _, eps := range epsilons {
		c, err := NewCampaign(seed, core.WithRetrainEvery(5))
		if err != nil {
			return nil, err
		}
		if err := c.Deployer.Bootstrap(context.Background(), c.Workloads, provision.MinSamplesToTrain, 8); err != nil {
			return nil, err
		}
		totalCost := 0.0
		for i := 0; i < runs; i++ {
			rep, err := c.Deployer.Deploy(context.Background(), c.Workloads[i%len(c.Workloads)], provision.Constraints{
				TmaxSeconds: 900, MaxNodes: 8, Epsilon: eps,
			})
			if err != nil {
				return nil, err
			}
			totalCost += rep.ProRataUSD
		}
		distinct := map[string]bool{}
		for _, s := range c.Deployer.KB().Samples() {
			distinct[fmt.Sprintf("%s/%d", s.Architecture, s.Nodes)] = true
		}
		out.DistinctConfigs = append(out.DistinctConfigs, len(distinct))
		out.MeanCostUSD = append(out.MeanCostUSD, totalCost/float64(runs))
	}
	return out, nil
}

// Print writes the exploration ablation rows.
func (a *EpsilonAblation) Print(w io.Writer) {
	fmt.Fprintln(w, "ABLATION: epsilon-greedy exploration (identical campaigns, varying epsilon)")
	for i, eps := range a.Epsilons {
		fmt.Fprintf(w, "epsilon=%.2f  distinct configs=%3d  mean cost=%.3f$\n",
			eps, a.DistinctConfigs[i], a.MeanCostUSD[i])
	}
}

// RetrainAblation compares the self-optimizing loop (retrain after every
// run) against a model frozen right after bootstrap, measuring prediction
// MAE over the same stream of workloads.
type RetrainAblation struct {
	FrozenMAE     float64
	RetrainedMAE  float64
	StreamedRuns  int
	ImprovementPc float64
}

// EvaluateRetrainAblation runs the paired experiment: two campaigns with
// the same seed and the same deploy stream, one retraining after every
// execution (the paper's loop), one whose models stay frozen right after
// bootstrap (retrain cadence pushed past the campaign length).
func EvaluateRetrainAblation(seed uint64, runs int) (*RetrainAblation, error) {
	type variant struct {
		campaign *Campaign
		absErr   []float64
	}
	frozen, err := NewCampaign(seed, core.WithRetrainEvery(1<<30))
	if err != nil {
		return nil, err
	}
	live, err := NewCampaign(seed, core.WithRetrainEvery(1))
	if err != nil {
		return nil, err
	}
	variants := []*variant{{campaign: frozen}, {campaign: live}}
	for _, v := range variants {
		// Bootstrap trains both variants once; the frozen arm never
		// retrains afterwards because of its cadence.
		if err := v.campaign.Deployer.Bootstrap(context.Background(), v.campaign.Workloads, provision.MinSamplesToTrain, 8); err != nil {
			return nil, err
		}
		for i := 0; i < runs; i++ {
			f := v.campaign.Workloads[i%len(v.campaign.Workloads)]
			rep, err := v.campaign.Deployer.Deploy(context.Background(), f, provision.Constraints{
				TmaxSeconds: 900, MaxNodes: 8, Epsilon: 0.15,
			})
			if err != nil {
				return nil, err
			}
			// Score only the second half, after the live arm has had time
			// to learn from the stream.
			if i >= runs/2 && !rep.Bootstrap && rep.PredictedSeconds > 0 {
				v.absErr = append(v.absErr, math.Abs(rep.PredictedSeconds-rep.ActualSeconds))
			}
		}
	}
	out := &RetrainAblation{StreamedRuns: runs}
	out.FrozenMAE = finmath.Mean(variants[0].absErr)
	out.RetrainedMAE = finmath.Mean(variants[1].absErr)
	if out.FrozenMAE > 0 {
		out.ImprovementPc = 100 * (1 - out.RetrainedMAE/out.FrozenMAE)
	}
	return out, nil
}

// Print writes the retraining ablation.
func (a *RetrainAblation) Print(w io.Writer) {
	fmt.Fprintln(w, "ABLATION: self-optimizing retraining vs frozen-after-bootstrap models")
	fmt.Fprintf(w, "frozen MAE:    %8.1f s\n", a.FrozenMAE)
	fmt.Fprintf(w, "retrained MAE: %8.1f s\n", a.RetrainedMAE)
	fmt.Fprintf(w, "improvement:   %8.1f %% over %d runs\n", a.ImprovementPc, a.StreamedRuns)
}

// HeterogeneousAblation compares the best homogeneous deploy against the
// best heterogeneous mix for a range of deadlines — the paper's future-work
// extension quantified.
type HeterogeneousAblation struct {
	Deadlines  []float64
	HomoCost   []float64
	HeteroCost []float64
}

// EvaluateHeterogeneousAblation uses the oracle performance model as
// predictor so the ablation isolates the deploy-shape question from ML
// noise. deadlineFactors are multiples of the FASTEST single-VM time (so
// factors <= ~1.2 force multi-VM deploys, the regime where mixes can fill
// the gaps between integer homogeneous sizes). Factors whose deadline no
// configuration meets are skipped.
func EvaluateHeterogeneousAblation(pm cloud.PerfModel, f eeb.CharacteristicParams,
	deadlineFactors []float64, maxNodes int, seed uint64) (*HeterogeneousAblation, error) {

	oracle := perfOracle{pm: pm}
	rng := finmath.NewRNG(seed)
	homoSel, err := provision.NewSelector(oracle, nil, rng.Split())
	if err != nil {
		return nil, err
	}
	hetSel, err := provision.NewSelector(oracle, nil, rng.Split())
	if err != nil {
		return nil, err
	}
	hetSel.Heterogeneous = true

	out := &HeterogeneousAblation{}
	for _, factor := range deadlineFactors {
		tmax := BindingDeadline(pm, f, factor)
		cons := provision.Constraints{TmaxSeconds: tmax, MaxNodes: maxNodes, Epsilon: 0}
		homo, err := homoSel.Select(context.Background(), f, cons)
		if errors.Is(err, provision.ErrNoFeasible) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: homogeneous at Tmax=%v: %w", tmax, err)
		}
		het, err := hetSel.Select(context.Background(), f, cons)
		if err != nil {
			return nil, fmt.Errorf("experiments: heterogeneous at Tmax=%v: %w", tmax, err)
		}
		out.Deadlines = append(out.Deadlines, tmax)
		out.HomoCost = append(out.HomoCost, homo.PredictedCost)
		out.HeteroCost = append(out.HeteroCost, het.PredictedCost)
	}
	if len(out.Deadlines) == 0 {
		return nil, fmt.Errorf("experiments: no feasible deadline in the ablation")
	}
	return out, nil
}

// Print writes the heterogeneous ablation rows.
func (a *HeterogeneousAblation) Print(w io.Writer) {
	fmt.Fprintln(w, "ABLATION: homogeneous-only vs heterogeneous deploys (oracle predictor)")
	for i, tmax := range a.Deadlines {
		gain := 100 * (1 - a.HeteroCost[i]/a.HomoCost[i])
		fmt.Fprintf(w, "Tmax=%6.0fs  homo=%.3f$  hetero=%.3f$  gain=%5.1f%%\n",
			tmax, a.HomoCost[i], a.HeteroCost[i], gain)
	}
}

// perfOracle adapts the ground-truth performance model to the Predictor
// interface for oracle-driven ablations.
type perfOracle struct {
	pm cloud.PerfModel
}

// PredictSeconds implements provision.Predictor.
func (o perfOracle) PredictSeconds(arch string, nodes int, f eeb.CharacteristicParams) (float64, error) {
	it, ok := cloud.TypeByName(arch)
	if !ok {
		return 0, fmt.Errorf("experiments: unknown architecture %q", arch)
	}
	return o.pm.MeanExecSeconds(it, nodes, f), nil
}
