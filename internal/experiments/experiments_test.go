package experiments

import (
	"bytes"
	"strings"
	"testing"

	"disarcloud/internal/cloud"
	"disarcloud/internal/core"
	"disarcloud/internal/provision"
)

// sharedCampaign builds one moderately sized campaign reused across tests
// (KB construction dominates test time).
var sharedCampaignKB = func() *Campaign {
	c, err := NewCampaign(2016, core.WithRetrainEvery(10))
	if err != nil {
		panic(err)
	}
	if err := c.BuildKB(700); err != nil {
		panic(err)
	}
	return c
}()

func TestCampaignShape(t *testing.T) {
	c, err := NewCampaign(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Workloads) != 15 {
		t.Fatalf("%d EEBs, want 15 (paper Section IV)", len(c.Workloads))
	}
	for i, f := range c.Workloads {
		if f.OuterPaths != 1000 || f.InnerPaths != 50 {
			t.Fatalf("EEB %d has n_P=%d n_Q=%d, want 1000/50", i, f.OuterPaths, f.InnerPaths)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("EEB %d invalid: %v", i, err)
		}
	}
	// Risk factors must vary across portfolios for the ML feature to matter.
	distinct := map[int]bool{}
	for _, f := range c.Workloads {
		distinct[f.RiskFactors] = true
	}
	if len(distinct) < 2 {
		t.Fatal("risk-factor parameter does not vary across EEBs")
	}
}

func TestBuildKBReachesTarget(t *testing.T) {
	c := sharedCampaignKB
	if got := c.Deployer.KB().Len(); got < 700 {
		t.Fatalf("KB has %d samples, want >= 700", got)
	}
	// All six architectures must appear (bootstrap guarantees it).
	if got := len(c.Deployer.KB().Architectures()); got != 6 {
		t.Fatalf("KB covers %d architectures, want 6", got)
	}
}

func TestTableIShape(t *testing.T) {
	res, err := EvaluateAccuracy(sharedCampaignKB.Deployer.KB(), 7, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Architectures) != 6 || len(res.Models) != 6 {
		t.Fatalf("table is %dx%d, want 6x6", len(res.Models), len(res.Architectures))
	}
	for _, m := range res.Models {
		for _, a := range res.Architectures {
			d, ok := res.DeltaBar[m][a]
			if !ok {
				t.Fatalf("missing cell %s/%s", m, a)
			}
			// Magnitude band of Table I: tens to low hundreds of seconds.
			if d < -800 || d > 800 {
				t.Errorf("delta-bar %s/%s = %v s, far outside the paper's band", m, a, d)
			}
		}
	}
	var buf bytes.Buffer
	res.PrintTableI(&buf)
	if !strings.Contains(buf.String(), "TABLE I") || !strings.Contains(buf.String(), "MLP") {
		t.Fatal("PrintTableI output malformed")
	}
}

func TestFigure2Clustering(t *testing.T) {
	res, err := EvaluateAccuracy(sharedCampaignKB.Deployer.KB(), 7, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	corr := res.Figure2Correlation()
	for name, c := range corr {
		// The paper's Figure 2 clusters all models along the diagonal at
		// ~1500 samples; this reduced 700-sample KB allows the weakest
		// learners slightly more scatter.
		if c < 0.85 {
			t.Errorf("%s: predicted-vs-real correlation %.3f — point cloud not on the diagonal", name, c)
		}
	}
	var buf bytes.Buffer
	res.PrintFigure2(&buf, 50)
	if !strings.Contains(buf.String(), "FIGURE 2") {
		t.Fatal("PrintFigure2 output malformed")
	}
}

func TestFigure3ErrorConcentration(t *testing.T) {
	res, err := EvaluateAccuracy(sharedCampaignKB.Deployer.KB(), 7, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~80% of predictions within 200 s. Require at least 70%.
	if share := res.ShareWithin(200); share < 0.70 {
		t.Fatalf("only %.0f%% of ensemble predictions within 200s", 100*share)
	}
	centers, pct := res.Figure3Histogram(-1000, 1000, 20)
	if len(centers) != 20 || len(pct) != 20 {
		t.Fatal("histogram shape wrong")
	}
	total := 0.0
	for _, p := range pct {
		total += p
	}
	if total < 99.9 || total > 100.1 {
		t.Fatalf("histogram percentages sum to %v", total)
	}
	var buf bytes.Buffer
	res.PrintFigure3(&buf)
	if !strings.Contains(buf.String(), "FIGURE 3") {
		t.Fatal("PrintFigure3 output malformed")
	}
}

func TestTableIICosts(t *testing.T) {
	res, err := EvaluateCosts(sharedCampaignKB.Deployer.KB())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Architectures) != 6 {
		t.Fatalf("Table II has %d rows", len(res.Architectures))
	}
	for _, a := range res.Architectures {
		c := res.AvgCostUSD[a]
		// Paper band: $0.041-$0.121 per simulation; allow a generous
		// simulated band.
		if c < 0.01 || c > 0.8 {
			t.Errorf("%s: per-simulation cost %v$ far outside Table II band", a, c)
		}
	}
	// The compute-value ordering: c3.4xlarge must be among the two cheapest.
	cheapest := res.Cheapest()
	if cheapest != "c3.4xlarge" && cheapest != "c4.4xlarge" && cheapest != "m4.4xlarge" {
		t.Errorf("cheapest architecture is %s — expected a 4xlarge", cheapest)
	}
	var buf bytes.Buffer
	res.PrintTableII(&buf)
	if !strings.Contains(buf.String(), "TABLE II") {
		t.Fatal("PrintTableII output malformed")
	}
}

func TestFigure4Speedups(t *testing.T) {
	res, err := EvaluateSpeedup(cloud.DefaultPerfModel(), sharedCampaignKB.Workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Architectures) != 6 {
		t.Fatal("Figure 4 must have six bars")
	}
	for _, a := range res.Architectures {
		s := res.Speedup[a]
		if s < 2 || s > 10 {
			t.Errorf("%s speedup %v outside the paper's 0-9 axis range", a, s)
		}
	}
	if res.Speedup["c3.8xlarge"] <= res.Speedup["c3.4xlarge"] {
		t.Error("bigger c3 instance not faster")
	}
	var buf bytes.Buffer
	res.PrintFigure4(&buf)
	if !strings.Contains(buf.String(), "FIGURE 4") {
		t.Fatal("PrintFigure4 output malformed")
	}
}

func TestFinalComparisonShape(t *testing.T) {
	// Use the largest campaign workload with a loose deadline.
	c := sharedCampaignKB
	f := c.Workloads[0]
	for _, w := range c.Workloads {
		if w.Complexity() > f.Complexity() {
			f = w
		}
	}
	res, err := EvaluateFinalComparison(c.Deployer.Selector(), cloud.DefaultPerfModel(), f,
		provision.Constraints{TmaxSeconds: 0, MaxNodes: 8, Epsilon: 0}) // binding deadline
	if err != nil {
		t.Fatal(err)
	}
	// Shape criteria of the paper's closing experiment: ML strictly cheaper
	// than forced high-end AND strictly faster than the forced
	// most-cost-effective single VM, by tens of percent both ways.
	if res.MLCostUSD >= res.HighCostUSD {
		t.Fatalf("ML cost %v$ not below high-end %v$", res.MLCostUSD, res.HighCostUSD)
	}
	if res.MLSeconds >= res.EffSeconds {
		t.Fatalf("ML time %vs not below cost-effective %vs", res.MLSeconds, res.EffSeconds)
	}
	if res.CostDecrease <= 0.05 {
		t.Fatalf("cost decrease only %.1f%%", 100*res.CostDecrease)
	}
	if res.TimeReduction <= 0.05 {
		t.Fatalf("time reduction only %.1f%%", 100*res.TimeReduction)
	}
	var buf bytes.Buffer
	res.PrintFinal(&buf)
	if !strings.Contains(buf.String(), "FINAL COMPARISON") {
		t.Fatal("PrintFinal output malformed")
	}
}

func TestEnsembleAblation(t *testing.T) {
	res, err := EvaluateEnsembleAblation(sharedCampaignKB.Deployer.KB(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MAE) != 7 { // six models + ensemble
		t.Fatalf("%d MAE rows", len(res.MAE))
	}
	if res.MAE["Ensemble"] >= res.WorstSingle {
		t.Fatalf("ensemble MAE %v not below worst single %v", res.MAE["Ensemble"], res.WorstSingle)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Ensemble") {
		t.Fatal("ablation print malformed")
	}
}

func TestHeterogeneousAblation(t *testing.T) {
	f := sharedCampaignKB.Workloads[3]
	res, err := EvaluateHeterogeneousAblation(cloud.DefaultPerfModel(), f,
		[]float64{1.6, 1.1, 0.9}, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Deadlines {
		// The heterogeneous pool contains every homogeneous candidate, so
		// its optimum can never be worse.
		if res.HeteroCost[i] > res.HomoCost[i]+1e-9 {
			t.Fatalf("deadline %v: heterogeneous optimum %v worse than homogeneous %v",
				res.Deadlines[i], res.HeteroCost[i], res.HomoCost[i])
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "heterogeneous") {
		t.Fatal("ablation print malformed")
	}
}

func TestEpsilonAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale ablation")
	}
	res, err := EvaluateEpsilonAblation(11, []float64{0, 0.3}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctConfigs[1] <= res.DistinctConfigs[0] {
		t.Fatalf("exploration did not widen coverage: %v", res.DistinctConfigs)
	}
}
