package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"disarcloud/internal/alm"
	"disarcloud/internal/eeb"
	"disarcloud/internal/finmath"
	"disarcloud/internal/fund"
	"disarcloud/internal/policy"
	"disarcloud/internal/proxyval"
	"disarcloud/internal/stochastic"
)

// ProxyPoint is one point on the proxy tier's throughput-vs-accuracy
// frontier: one (model, error budget) configuration served against the full
// nested valuation of the same block.
type ProxyPoint struct {
	Model       string
	ErrorBudget float64

	// Serving split and out-of-sample error of the trained proxy.
	HitRate          float64
	Escalated        int
	ValidationRelMAE float64
	RealizedRelMAE   float64

	// Throughput: nanoseconds per outer path. FastPathNs is a pure proxy
	// prediction; CascadeNs amortises training plus gated serving (with
	// escalations) over the evaluated paths.
	FastPathNs float64
	CascadeNs  float64
	// Speedup is FullNs / FastPathNs — the headline serving-tier ratio.
	Speedup        float64
	CascadeSpeedup float64

	// Accuracy of the cascade against the full nested run.
	BELRelErr float64
	SCRRelErr float64
}

// ProxyComparison is the outcome of RunProxyComparison: the full-pipeline
// baseline plus the frontier points.
type ProxyComparison struct {
	Outer, Inner int
	Seed         uint64
	TrainOuter   int

	FullBEL, FullSCR float64
	// FullNs is the nested pipeline's nanoseconds per outer path.
	FullNs float64

	Points []ProxyPoint
}

// proxyExperimentBlock builds the valuation block the comparison runs on:
// the paper's savings-heavy portfolio archetype over the default euro-area
// market, sized like an internal-model slice (many inner paths) so the
// nested baseline is genuinely expensive.
func proxyExperimentBlock(seed uint64, outer, inner int) (*eeb.Block, error) {
	spec := policy.ItalianCompanySpecs()[0]
	spec.NumContracts = 10
	p, err := policy.Generate(finmath.NewRNG(seed+1), spec)
	if err != nil {
		return nil, err
	}
	market := stochastic.Config{
		Horizon:      p.MaxTerm(),
		StepsPerYear: 1,
		Rate: stochastic.VasicekParams{
			R0: 0.015, Speed: 0.25, MeanP: 0.03, MeanQ: 0.025, Sigma: 0.009,
		},
		Equities: []stochastic.GBMParams{{S0: 100, Mu: 0.06, Sigma: 0.18}},
		Credit:   stochastic.CIRParams{L0: 0.008, Speed: 0.5, Mean: 0.012, Sigma: 0.03},
	}
	b := &eeb.Block{
		ID: "proxy-frontier", Type: eeb.ALMValuation, Portfolio: p,
		Fund: fund.TypicalItalianFund(5, market), Market: market,
		Outer: outer, Inner: inner,
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// RunProxyComparison measures the LSMC proxy serving tier against the full
// nested pipeline on one internal-model-grade block: for every (model,
// budget) pair it trains a proxy on a disjoint seeded sample, serves all
// outer paths through the uncertainty-gated cascade, and records throughput
// (full vs fast path vs cascade) alongside accuracy (BEL/SCR error of the
// cascade, out-of-sample validation error, realized escalation error). The
// Solvency II numbers are bit-deterministic in the seed; only the ns/path
// timings vary run to run.
func RunProxyComparison(seed uint64, outer, inner int, models []string, budgets []float64) (*ProxyComparison, error) {
	if outer <= 0 || inner <= 0 {
		return nil, fmt.Errorf("experiments: non-positive proxy comparison sample sizes")
	}
	if len(models) == 0 {
		models = []string{proxyval.ModelForest, proxyval.ModelPoly}
	}
	if len(budgets) == 0 {
		budgets = []float64{0.01, 0.05, 0.20}
	}
	block, err := proxyExperimentBlock(seed, outer, inner)
	if err != nil {
		return nil, err
	}
	v, err := alm.NewValuer(block, seed)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Full-pipeline baseline: value every outer path once, timed.
	start := time.Now()
	full, err := v.ValueNested()
	if err != nil {
		return nil, err
	}
	res := &ProxyComparison{
		Outer: outer, Inner: inner, Seed: seed,
		FullBEL: full.BEL, FullSCR: full.SCR,
		FullNs: float64(time.Since(start).Nanoseconds()) / float64(outer),
	}

	// Feature rows for the fast-path timing loop.
	feats := make([][]float64, outer)
	err = v.WalkOuter(ctx, 0, outer, func(i int, st alm.OuterState) error {
		feats[i] = v.Features(st)
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, model := range models {
		for _, budget := range budgets {
			spec := proxyval.Spec{Model: model, ErrorBudget: budget}
			res.TrainOuter = spec.WithDefaults().TrainOuter
			trainStart := time.Now()
			p, err := proxyval.Train(ctx, v, spec, seed+7)
			if err != nil {
				return nil, fmt.Errorf("experiments: train %s: %w", model, err)
			}
			trainNs := float64(time.Since(trainStart).Nanoseconds())

			serveStart := time.Now()
			proxyRes, stats, err := p.Value(ctx, v, nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: serve %s: %w", model, err)
			}
			serveNs := float64(time.Since(serveStart).Nanoseconds())

			// Pure fast-path throughput: predict every outer path once more,
			// timed without training or escalation.
			fastStart := time.Now()
			for _, f := range feats {
				p.Predict(f)
			}
			fastNs := float64(time.Since(fastStart).Nanoseconds()) / float64(outer)

			pt := ProxyPoint{
				Model:            stats.Model,
				ErrorBudget:      budget,
				HitRate:          stats.HitRate(),
				Escalated:        stats.Escalated,
				ValidationRelMAE: stats.ValidationRelMAE,
				RealizedRelMAE:   stats.RealizedRelMAE,
				FastPathNs:       fastNs,
				CascadeNs:        (trainNs + serveNs) / float64(outer),
				BELRelErr:        relErr(proxyRes.BEL, full.BEL),
				SCRRelErr:        relErr(proxyRes.SCR, full.SCR),
			}
			if fastNs > 0 {
				pt.Speedup = res.FullNs / fastNs
			}
			if pt.CascadeNs > 0 {
				pt.CascadeSpeedup = res.FullNs / pt.CascadeNs
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Print writes the frontier table: one row per (model, budget) point, the
// full-pipeline baseline on top.
func (r *ProxyComparison) Print(w io.Writer) {
	fmt.Fprintf(w, "PROXY FRONTIER: %d outer x %d inner, train=%d, seed=%d\n",
		r.Outer, r.Inner, r.TrainOuter, r.Seed)
	fmt.Fprintf(w, "full pipeline: BEL=%.2f SCR=%.2f  %.0f ns/path\n", r.FullBEL, r.FullSCR, r.FullNs)
	fmt.Fprintf(w, "%-8s %7s %8s %5s %9s %9s %9s %9s %10s %10s\n",
		"model", "budget", "hit", "esc", "fast-ns", "casc-ns", "speedup", "casc-x", "BEL-err", "SCR-err")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-8s %7.3f %7.1f%% %5d %9.0f %9.0f %8.0fx %8.1fx %9.2e %9.2e\n",
			p.Model, p.ErrorBudget, 100*p.HitRate, p.Escalated,
			p.FastPathNs, p.CascadeNs, p.Speedup, p.CascadeSpeedup,
			p.BELRelErr, p.SCRRelErr)
	}
}
