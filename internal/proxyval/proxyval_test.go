package proxyval

import (
	"context"
	"math"
	"testing"

	"disarcloud/internal/actuarial"
	"disarcloud/internal/alm"
	"disarcloud/internal/eeb"
	"disarcloud/internal/fund"
	"disarcloud/internal/policy"
	"disarcloud/internal/stochastic"
)

func testMarket(horizon int) stochastic.Config {
	return stochastic.Config{
		Horizon:      horizon,
		StepsPerYear: 1,
		Rate: stochastic.VasicekParams{
			R0: 0.02, Speed: 0.3, MeanP: 0.03, MeanQ: 0.025, Sigma: 0.008,
		},
		Equities: []stochastic.GBMParams{{S0: 100, Mu: 0.06, Sigma: 0.18}},
		Credit:   stochastic.CIRParams{L0: 0.008, Speed: 0.5, Mean: 0.012, Sigma: 0.03},
	}
}

func testBlock(tb testing.TB, outer, inner int) *eeb.Block {
	tb.Helper()
	market := testMarket(15)
	contracts := []policy.Contract{
		{Kind: policy.Endowment, Age: 45, Gender: actuarial.Male, Term: 10,
			InsuredSum: 10000, Beta: 0.8, TechnicalRate: 0.02, Count: 50},
		{Kind: policy.PureEndowment, Age: 50, Gender: actuarial.Female, Term: 15,
			InsuredSum: 20000, Beta: 0.85, TechnicalRate: 0.01, Count: 30},
	}
	p := &policy.Portfolio{Name: "proxyval-test", Contracts: contracts}
	b := &eeb.Block{
		ID: "proxyval-test/B1", Type: eeb.ALMValuation, Portfolio: p,
		Fund: fund.TypicalItalianFund(4, market), Market: market,
		Outer: outer, Inner: inner,
	}
	if err := b.Validate(); err != nil {
		tb.Fatal(err)
	}
	return b
}

func testValuer(tb testing.TB, outer, inner int, seed uint64) *alm.Valuer {
	tb.Helper()
	v, err := alm.NewValuer(testBlock(tb, outer, inner), seed)
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

func TestSpecDefaultsAndValidate(t *testing.T) {
	s := Spec{}.WithDefaults()
	if s.TrainOuter != DefaultTrainOuter || s.ErrorBudget != DefaultErrorBudget ||
		s.EscalationCap != DefaultEscalationCap || s.Model != ModelForest ||
		s.Degree != DefaultDegree || s.ValidationFrac != DefaultValidationFrac {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec (all defaults) rejected: %v", err)
	}
	bad := []Spec{
		{TrainOuter: 5},
		{TrainOuter: -1},
		{TrainInner: -1},
		{ErrorBudget: 1.5},
		{ErrorBudget: -0.1},
		{ErrorBudget: math.NaN()},
		{EscalationCap: 2},
		{EscalationCap: -0.5},
		{Model: "quantum"},
		{Degree: 9},
		{Degree: -1},
		{ValidationFrac: 0.7},
		{ValidationFrac: -0.2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestStatsMergeAndHitRate(t *testing.T) {
	a := Stats{Model: ModelForest, TrainOuter: 100, Validation: 20, Scale: 10,
		ValidationMAE: 1, ValidationRMSE: 2, ValidationMaxAbs: 4, ValidationRelMAE: 0.1,
		Evaluated: 50, Proxied: 40, Escalated: 10, BudgetBusts: 15,
		RealizedMAE: 0.5, RealizedMaxAbs: 1, RealizedRelMAE: 0.05}
	b := Stats{Model: ModelForest, TrainOuter: 100, Validation: 20, Scale: 20,
		ValidationMAE: 3, ValidationRMSE: 2, ValidationMaxAbs: 6, ValidationRelMAE: 0.3,
		Evaluated: 150, Proxied: 150, Escalated: 0, BudgetBusts: 0}
	m := a
	m.Merge(b)
	if m.Model != ModelForest {
		t.Fatalf("same-model merge became %q", m.Model)
	}
	if m.Evaluated != 200 || m.Proxied != 190 || m.Escalated != 10 || m.BudgetBusts != 15 {
		t.Fatalf("counts wrong: %+v", m)
	}
	if m.TrainOuter != 200 || m.Validation != 40 {
		t.Fatalf("training counts wrong: %+v", m)
	}
	if got, want := m.ValidationMAE, 2.0; got != want {
		t.Fatalf("merged validation MAE %v, want %v", got, want)
	}
	if got, want := m.Scale, (10.0*50+20*150)/200; got != want {
		t.Fatalf("merged scale %v, want %v", got, want)
	}
	if m.ValidationMaxAbs != 6 || m.RealizedMaxAbs != 1 {
		t.Fatalf("maxima wrong: %+v", m)
	}
	// Realized errors are weighted by escalations only: b had none.
	if m.RealizedMAE != 0.5 {
		t.Fatalf("merged realized MAE %v, want 0.5", m.RealizedMAE)
	}
	if hr := m.HitRate(); hr != 190.0/200 {
		t.Fatalf("hit rate %v", hr)
	}
	mixed := a
	mixed.Merge(Stats{Model: ModelPoly})
	if mixed.Model != "mixed" {
		t.Fatalf("cross-model merge = %q, want mixed", mixed.Model)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
}

func TestTrainRejectsBadSpec(t *testing.T) {
	v := testValuer(t, 20, 2, 1)
	if _, err := Train(context.Background(), v, Spec{ErrorBudget: 2}, 1); err == nil {
		t.Fatal("bad spec accepted")
	}
}

// TestTrainAndValueBitDeterministic is the reproducibility guarantee: two
// independent train+serve runs under the same seeds agree bit for bit, in
// both the result and the telemetry.
func TestTrainAndValueBitDeterministic(t *testing.T) {
	spec := Spec{TrainOuter: 48, ErrorBudget: 0.02, Model: ModelForest}
	run := func() (*alm.Result, Stats) {
		v := testValuer(t, 40, 3, 20160628)
		p, err := Train(context.Background(), v, spec, 77)
		if err != nil {
			t.Fatal(err)
		}
		res, st, err := p.Value(context.Background(), v, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, st
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1.BEL != r2.BEL || r1.SCR != r2.SCR {
		t.Fatalf("serving not bit-deterministic: BEL %v vs %v, SCR %v vs %v",
			r1.BEL, r2.BEL, r1.SCR, r2.SCR)
	}
	if s1 != s2 {
		t.Fatalf("stats not bit-deterministic:\n%+v\n%+v", s1, s2)
	}
	for i := range r1.Y1 {
		if r1.Y1[i] != r2.Y1[i] {
			t.Fatalf("Y1[%d] differs", i)
		}
	}
}

// TestFullEscalationMatchesNested turns the gate all the way up: a vanishing
// error budget with an unbounded cap escalates every path, so the cascade
// must reproduce the plain nested valuation bit for bit.
func TestFullEscalationMatchesNested(t *testing.T) {
	v := testValuer(t, 30, 3, 9)
	spec := Spec{TrainOuter: 32, ErrorBudget: 1e-9, EscalationCap: 1, Model: ModelLinear}
	p, err := Train(context.Background(), v, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := p.Value(context.Background(), v, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Escalated != 30 || st.Proxied != 0 {
		t.Fatalf("expected full escalation, got %+v", st)
	}
	nested, err := v.ValueNested()
	if err != nil {
		t.Fatal(err)
	}
	if res.BEL != nested.BEL || res.SCR != nested.SCR {
		t.Fatalf("fully escalated proxy (BEL %v, SCR %v) != nested (BEL %v, SCR %v)",
			res.BEL, res.SCR, nested.BEL, nested.SCR)
	}
	if res.Method != "proxy" {
		t.Fatalf("method %q", res.Method)
	}
	if st.RealizedMAE <= 0 {
		t.Fatalf("full escalation should observe realized error, got %v", st.RealizedMAE)
	}
}

// TestEscalationCapBounds pins the cap contract: escalations never exceed
// ceil(cap*Outer) even when every prediction busts the budget, and the
// counters stay consistent.
func TestEscalationCapBounds(t *testing.T) {
	v := testValuer(t, 40, 2, 13)
	spec := Spec{TrainOuter: 32, ErrorBudget: 1e-9, EscalationCap: 0.1, Model: ModelPoly}
	p, err := Train(context.Background(), v, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, st, err := p.Value(context.Background(), v, func() { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 40 {
		t.Fatalf("onPath ran %d times, want 40", calls)
	}
	if st.BudgetBusts != 40 {
		t.Fatalf("budget busts %d, want 40", st.BudgetBusts)
	}
	if want := 4; st.Escalated != want {
		t.Fatalf("escalated %d, want cap %d", st.Escalated, want)
	}
	if st.Proxied+st.Escalated != st.Evaluated || st.Evaluated != 40 {
		t.Fatalf("inconsistent split: %+v", st)
	}
}

// TestAllModelsServe trains each family and checks the cascade produces a
// finite result with sane telemetry and a positive conformal scale.
func TestAllModelsServe(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			v := testValuer(t, 24, 2, 4)
			spec := Spec{TrainOuter: 40, ErrorBudget: 0.1, Model: model}
			p, err := Train(context.Background(), v, spec, 21)
			if err != nil {
				t.Fatal(err)
			}
			if p.Scale() <= 0 {
				t.Fatalf("scale %v", p.Scale())
			}
			if p.Spec().Model != model {
				t.Fatalf("resolved model %q", p.Spec().Model)
			}
			ts := p.TrainingStats()
			if ts.Validation < 2 || ts.ValidationMAE < 0 || math.IsNaN(ts.ValidationRelMAE) {
				t.Fatalf("bad training stats: %+v", ts)
			}
			res, st, err := p.Value(context.Background(), v, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(res.BEL) || math.IsNaN(res.SCR) {
				t.Fatalf("NaN result: %+v", res)
			}
			if st.Evaluated != 24 || st.Proxied+st.Escalated != 24 {
				t.Fatalf("bad split: %+v", st)
			}
			if st.Escalated > int(math.Ceil(spec.WithDefaults().EscalationCap*24)) {
				t.Fatalf("cap violated: %+v", st)
			}
		})
	}
}

func TestPredictBandNonNegative(t *testing.T) {
	v := testValuer(t, 16, 2, 2)
	p, err := Train(context.Background(), v, Spec{TrainOuter: 32, Model: ModelForest}, 8)
	if err != nil {
		t.Fatal(err)
	}
	err = v.WalkOuter(context.Background(), 0, 16, func(i int, st alm.OuterState) error {
		val, band := p.Predict(v.Features(st))
		if math.IsNaN(val) || band < 0 || math.IsNaN(band) {
			t.Fatalf("outer %d: predict (%v, %v)", i, val, band)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrainCancellation(t *testing.T) {
	v := testValuer(t, 16, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Train(ctx, v, Spec{TrainOuter: 32}, 1); err == nil {
		t.Fatal("cancelled training succeeded")
	}
	p, err := Train(context.Background(), v, Spec{TrainOuter: 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Value(ctx, v, nil); err == nil {
		t.Fatal("cancelled serving succeeded")
	}
}
