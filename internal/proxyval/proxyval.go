// Package proxyval is the LSMC proxy-model serving tier: it trains a cheap
// regression proxy on a seeded sample of full nested Monte Carlo valuations
// and then answers outer-scenario valuations through the proxy's fast path,
// escalating only the predictions whose own uncertainty band busts the error
// budget back to the exact batched pipeline. This is the cascade-serving
// shape of production ML inference stacks (cheap model + confidence gate +
// exact fallback), applied to the Solvency II workload of the paper: the
// proxy answers the bulk of the 100k+ outer "internal model" scenarios at
// orders-of-magnitude higher throughput than nested simulation, while the
// gate keeps the campaign SCR inside a stated tolerance (Krah, Nikolić &
// Korn, arXiv:1909.02182).
//
// The tier reuses the existing stack end to end: features are the
// F1-measurable outer risk-factor state from internal/stochastic (through
// alm.Valuer.Features), training targets are full nested valuations drawn
// through the PR 4 batched pipeline at outer indices disjoint from the
// evaluation range, the polynomial model is the alm LSMC basis and the
// others come from internal/ml. Uncertainty is the per-tree spread for the
// random forest and a difficulty-normalised conformal band (residual
// quantile on held-out validation) for every other model.
package proxyval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"disarcloud/internal/alm"
	"disarcloud/internal/finmath"
	"disarcloud/internal/ml"
)

// Supported proxy model families. ModelPoly is the alm LSMC polynomial
// basis; the others are internal/ml regressors.
const (
	ModelForest = "forest"
	ModelPoly   = "poly"
	ModelLinear = "linear"
	ModelMLP    = "mlp"
)

// Models lists the supported model identifiers.
func Models() []string { return []string{ModelForest, ModelPoly, ModelLinear, ModelMLP} }

// Defaults applied by Spec.WithDefaults.
const (
	DefaultTrainOuter     = 128
	DefaultErrorBudget    = 0.05
	DefaultEscalationCap  = 0.25
	DefaultDegree         = 2
	DefaultValidationFrac = 0.25
	// MinTrainOuter is the smallest usable training sample: enough to leave
	// both a fit set and a non-trivial held-out validation set.
	MinTrainOuter = 16
	// conformalQuantile is the held-out residual quantile that scales the
	// uncertainty band: the band covers ~90% of out-of-sample errors.
	conformalQuantile = 0.9
)

// Spec configures the proxy tier for one valuation block.
type Spec struct {
	// TrainOuter is the number of full nested valuations sampled as the
	// training set (0 = DefaultTrainOuter). The sample is drawn at outer
	// indices [block.Outer, block.Outer+TrainOuter), disjoint from the
	// evaluated range, so training never reuses an evaluation path.
	TrainOuter int
	// TrainInner is the number of inner paths per training valuation
	// (0 = the block's own Inner).
	TrainInner int
	// ErrorBudget is the relative tolerance of one proxied valuation: a
	// prediction whose uncertainty band exceeds ErrorBudget*scale (scale =
	// mean absolute training target) is escalated to full Monte Carlo.
	// 0 selects DefaultErrorBudget; must lie in (0, 1].
	ErrorBudget float64
	// EscalationCap bounds the escalated fraction of evaluated outer paths:
	// at most ceil(EscalationCap*Outer) paths run the full pipeline, worst
	// band first. 0 selects DefaultEscalationCap; must lie in (0, 1].
	EscalationCap float64
	// Model selects the proxy family ("" = ModelForest).
	Model string
	// Degree is the polynomial degree of the ModelPoly basis (0 = 2).
	Degree int
	// ValidationFrac is the held-out fraction of the training sample used
	// for out-of-sample error reporting and conformal calibration
	// (0 = DefaultValidationFrac; must lie in (0, 0.5]).
	ValidationFrac float64
}

// WithDefaults returns the spec with zero knobs resolved to their defaults.
func (s Spec) WithDefaults() Spec {
	if s.TrainOuter == 0 {
		s.TrainOuter = DefaultTrainOuter
	}
	if s.ErrorBudget == 0 {
		s.ErrorBudget = DefaultErrorBudget
	}
	if s.EscalationCap == 0 {
		s.EscalationCap = DefaultEscalationCap
	}
	if s.Model == "" {
		s.Model = ModelForest
	}
	if s.Degree == 0 {
		s.Degree = DefaultDegree
	}
	if s.ValidationFrac == 0 {
		s.ValidationFrac = DefaultValidationFrac
	}
	return s
}

// Validate reports whether the spec (after WithDefaults) is well-posed.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if s.TrainOuter < MinTrainOuter {
		return fmt.Errorf("proxyval: training sample %d below minimum %d", s.TrainOuter, MinTrainOuter)
	}
	if s.TrainInner < 0 {
		return errors.New("proxyval: training inner paths must be non-negative")
	}
	if math.IsNaN(s.ErrorBudget) || s.ErrorBudget <= 0 || s.ErrorBudget > 1 {
		return fmt.Errorf("proxyval: error budget %v outside (0, 1]", s.ErrorBudget)
	}
	if math.IsNaN(s.EscalationCap) || s.EscalationCap <= 0 || s.EscalationCap > 1 {
		return fmt.Errorf("proxyval: escalation cap %v outside (0, 1]", s.EscalationCap)
	}
	switch s.Model {
	case ModelForest, ModelPoly, ModelLinear, ModelMLP:
	default:
		return fmt.Errorf("proxyval: unknown model %q (want one of %v)", s.Model, Models())
	}
	if s.Degree < 1 || s.Degree > 6 {
		return fmt.Errorf("proxyval: polynomial degree %d outside [1, 6]", s.Degree)
	}
	if math.IsNaN(s.ValidationFrac) || s.ValidationFrac <= 0 || s.ValidationFrac > 0.5 {
		return fmt.Errorf("proxyval: validation fraction %v outside (0, 0.5]", s.ValidationFrac)
	}
	return nil
}

// Stats carries the serving telemetry of one proxied valuation (or, after
// Merge, of several): training/validation shape, out-of-sample error, and
// the proxy-vs-escalated split with realized escalation errors. Every field
// is deterministic in the valuation seed, so stats participate in the
// bit-reproducibility guarantee.
type Stats struct {
	Model      string `json:"model"`
	TrainOuter int    `json:"train_outer"` // training valuations sampled
	TrainInner int    `json:"train_inner"` // inner paths per training valuation
	Validation int    `json:"validation"`  // held-out sample size

	// Scale is the mean absolute training target — the denominator of every
	// relative error below.
	Scale float64 `json:"scale"`

	// Out-of-sample error on the held-out validation sample.
	ValidationMAE    float64 `json:"validation_mae"`
	ValidationRMSE   float64 `json:"validation_rmse"`
	ValidationMaxAbs float64 `json:"validation_max_abs"`
	ValidationRelMAE float64 `json:"validation_rel_mae"`

	// Serving split over the evaluated outer paths.
	Evaluated   int `json:"evaluated"`    // outer paths answered
	Proxied     int `json:"proxied"`      // answered by the fast path
	Escalated   int `json:"escalated"`    // re-valued by full Monte Carlo
	BudgetBusts int `json:"budget_busts"` // predictions whose band busted the budget

	// Realized |proxy - full| error over the escalated paths, where the
	// exact value is known.
	RealizedMAE    float64 `json:"realized_mae"`
	RealizedMaxAbs float64 `json:"realized_max_abs"`
	RealizedRelMAE float64 `json:"realized_rel_mae"`
}

// HitRate returns the fraction of evaluated paths answered by the fast path.
func (s Stats) HitRate() float64 {
	if s.Evaluated == 0 {
		return 0
	}
	return float64(s.Proxied) / float64(s.Evaluated)
}

// Merge accumulates other into s: counts add, mean errors combine weighted
// by their sample sizes, maxima take the max. Differing model names merge to
// "mixed".
func (s *Stats) Merge(other Stats) {
	if s.Model == "" {
		s.Model = other.Model
	} else if other.Model != "" && other.Model != s.Model {
		s.Model = "mixed"
	}
	wMean := func(a float64, na int, b float64, nb int) float64 {
		if na+nb == 0 {
			return 0
		}
		return (a*float64(na) + b*float64(nb)) / float64(na+nb)
	}
	s.Scale = wMean(s.Scale, s.Evaluated, other.Scale, other.Evaluated)
	s.ValidationMAE = wMean(s.ValidationMAE, s.Validation, other.ValidationMAE, other.Validation)
	s.ValidationRelMAE = wMean(s.ValidationRelMAE, s.Validation, other.ValidationRelMAE, other.Validation)
	// RMSE combines through the mean of squares.
	if n := s.Validation + other.Validation; n > 0 {
		ms := (s.ValidationRMSE*s.ValidationRMSE*float64(s.Validation) +
			other.ValidationRMSE*other.ValidationRMSE*float64(other.Validation)) / float64(n)
		s.ValidationRMSE = math.Sqrt(ms)
	}
	s.ValidationMaxAbs = math.Max(s.ValidationMaxAbs, other.ValidationMaxAbs)
	s.RealizedMAE = wMean(s.RealizedMAE, s.Escalated, other.RealizedMAE, other.Escalated)
	s.RealizedRelMAE = wMean(s.RealizedRelMAE, s.Escalated, other.RealizedRelMAE, other.Escalated)
	s.RealizedMaxAbs = math.Max(s.RealizedMaxAbs, other.RealizedMaxAbs)
	s.TrainOuter += other.TrainOuter
	s.TrainInner = maxInt(s.TrainInner, other.TrainInner)
	s.Validation += other.Validation
	s.Evaluated += other.Evaluated
	s.Proxied += other.Proxied
	s.Escalated += other.Escalated
	s.BudgetBusts += other.BudgetBusts
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Proxy is a trained serving model for one block: the fitted regressor, its
// conformal band calibration, and the training statistics. A Proxy is
// immutable after Train and safe for concurrent Predict calls (the
// underlying ml models and the polynomial basis are read-only once fitted).
type Proxy struct {
	spec  Spec
	model ml.Model   // nil when spec.Model == ModelPoly
	poly  *alm.Proxy // nil otherwise

	lambda   float64   // conformal multiplier: band = lambda * difficulty
	scale    float64   // mean absolute training target
	centroid []float64 // training feature means (difficulty for non-forest models)
	featStd  []float64 // training feature standard deviations
	stats    Stats
}

// Spec returns the resolved spec the proxy was trained with.
func (p *Proxy) Spec() Spec { return p.spec }

// TrainingStats returns the training and validation statistics (serving
// counters are zero; Value fills them on its own copy).
func (p *Proxy) TrainingStats() Stats { return p.stats }

// Scale returns the mean absolute training target, the denominator of the
// relative error budget.
func (p *Proxy) Scale() float64 { return p.scale }

// difficulty scores how far features sit from the training distribution:
// for the forest the per-tree spread is the signal (computed by the caller),
// for every other model it is one plus the standardised distance from the
// training centroid — predictions far from the calibration cloud get wider
// conformal bands, which is what makes the gate selective instead of
// all-or-nothing.
func (p *Proxy) difficulty(features []float64, spread float64) float64 {
	if p.spec.Model == ModelForest {
		floor := 1e-6 * p.scale
		return math.Max(spread, floor)
	}
	d := 0.0
	for i, f := range features {
		z := (f - p.centroid[i]) / p.featStd[i]
		d += z * z
	}
	return 1 + math.Sqrt(d/float64(len(features)))
}

// Predict answers one feature vector through the fast path: the proxied
// value and its conformal uncertainty band (same unit as the value). The
// caller gates on band against its error budget.
func (p *Proxy) Predict(features []float64) (value, band float64) {
	var spread float64
	switch p.spec.Model {
	case ModelPoly:
		value = p.poly.Evaluate(features)
	case ModelForest:
		value, spread = p.model.(*ml.RandomForest).PredictWithSpread(features)
	default:
		value = p.model.Predict(features)
	}
	return value, p.lambda * p.difficulty(features, spread)
}

// Train fits a proxy for the valuer's block: it draws spec.TrainOuter full
// nested valuations at outer indices disjoint from the evaluation range
// through the batched PR 4 pipeline, fits the selected model on the
// non-held-out part, and calibrates the conformal band multiplier on the
// held-out residuals. seed roots the model's internal randomness (forest
// bootstrap, MLP init); the training targets inherit the valuer's own seed,
// so two Trains with equal (block, valuer seed, spec, seed) are
// bit-identical.
func Train(ctx context.Context, v *alm.Valuer, spec Spec, seed uint64) (*Proxy, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	block := v.Block()
	trainInner := spec.TrainInner
	if trainInner == 0 {
		trainInner = block.Inner
	}

	// The training sample lives beyond the evaluated range [0, Outer): the
	// per-index seeding of the scenario sources makes any index valid, and
	// disjointness means the proxy never trains on a path it will answer.
	base := block.Outer
	n := spec.TrainOuter
	feats := make([][]float64, 0, n)
	err := v.WalkOuter(ctx, base, base+n, func(i int, st alm.OuterState) error {
		feats = append(feats, v.Features(st))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("proxyval: training features: %w", err)
	}
	indices := make([]int, n)
	for i := range indices {
		indices[i] = base + i
	}
	targets, err := v.ValueOuters(ctx, indices, trainInner, nil)
	if err != nil {
		return nil, fmt.Errorf("proxyval: training valuations: %w", err)
	}

	// Deterministic held-out split: every k-th sample validates, the rest
	// fit. No shuffling — the sample indices are already i.i.d. draws.
	k := int(math.Round(1 / spec.ValidationFrac))
	if k < 2 {
		k = 2
	}
	var fitFeats, valFeats [][]float64
	var fitTargets, valTargets []float64
	for i := range feats {
		if i%k == 0 {
			valFeats = append(valFeats, feats[i])
			valTargets = append(valTargets, targets[i])
		} else {
			fitFeats = append(fitFeats, feats[i])
			fitTargets = append(fitTargets, targets[i])
		}
	}
	if len(valFeats) < 2 || len(fitFeats) < 4 {
		return nil, fmt.Errorf("proxyval: degenerate split: %d fit / %d validation points",
			len(fitFeats), len(valFeats))
	}

	p := &Proxy{spec: spec}
	switch spec.Model {
	case ModelPoly:
		poly, err := alm.FitProxy(fitFeats, fitTargets, alm.LSMCSpec{Degree: spec.Degree})
		if err != nil {
			return nil, fmt.Errorf("proxyval: training %s: %w", spec.Model, err)
		}
		p.poly = poly
	default:
		d := ml.NewDataset(nil)
		for i, f := range fitFeats {
			if err := d.Add(f, fitTargets[i]); err != nil {
				return nil, err
			}
		}
		var m ml.Model
		switch spec.Model {
		case ModelForest:
			m = ml.NewRandomForest(seed)
		case ModelLinear:
			m = ml.NewLinearRegression()
		case ModelMLP:
			m = ml.NewMLP(seed)
		}
		if err := m.Train(d); err != nil {
			return nil, fmt.Errorf("proxyval: training %s: %w", spec.Model, err)
		}
		p.model = m
	}

	// Scale and difficulty geometry come from the fit set only, so the
	// held-out calibration below is honestly out-of-sample.
	abs := make([]float64, len(fitTargets))
	for i, t := range fitTargets {
		abs[i] = math.Abs(t)
	}
	p.scale = finmath.Mean(abs)
	if p.scale < 1e-9 {
		p.scale = 1e-9
	}
	dim := len(fitFeats[0])
	p.centroid = make([]float64, dim)
	p.featStd = make([]float64, dim)
	col := make([]float64, len(fitFeats))
	for j := 0; j < dim; j++ {
		for i := range fitFeats {
			col[i] = fitFeats[i][j]
		}
		p.centroid[j] = finmath.Mean(col)
		p.featStd[j] = finmath.StdDev(col)
		if p.featStd[j] < 1e-12 {
			p.featStd[j] = 1
		}
	}

	// Conformal calibration: lambda is the held-out quantile of the
	// difficulty-normalised residual, so band = lambda*difficulty covers
	// ~conformalQuantile of out-of-sample errors by construction.
	ratios := make([]float64, len(valFeats))
	resid := make([]float64, len(valFeats))
	for i, f := range valFeats {
		var pred, spread float64
		switch spec.Model {
		case ModelPoly:
			pred = p.poly.Evaluate(f)
		case ModelForest:
			pred, spread = p.model.(*ml.RandomForest).PredictWithSpread(f)
		default:
			pred = p.model.Predict(f)
		}
		resid[i] = math.Abs(pred - valTargets[i])
		ratios[i] = resid[i] / p.difficulty(f, spread)
	}
	sort.Float64s(ratios)
	p.lambda = finmath.QuantileSorted(ratios, conformalQuantile)

	sumSq := 0.0
	for _, r := range resid {
		sumSq += r * r
	}
	p.stats = Stats{
		Model:            spec.Model,
		TrainOuter:       n,
		TrainInner:       trainInner,
		Validation:       len(valFeats),
		Scale:            p.scale,
		ValidationMAE:    finmath.Mean(resid),
		ValidationRMSE:   math.Sqrt(sumSq / float64(len(resid))),
		ValidationMaxAbs: finmath.Max(resid),
	}
	p.stats.ValidationRelMAE = p.stats.ValidationMAE / p.scale
	return p, nil
}

// Value answers every outer path of the valuer's block through the serving
// cascade: the fast path predicts all block.Outer paths, the gate collects
// every prediction whose band exceeds ErrorBudget*scale, and the worst
// offenders — at most ceil(EscalationCap*Outer) — are re-valued through the
// full batched Monte Carlo pipeline, bit-identically to what a full run
// would assign those paths. onPath, when non-nil, runs once per outer path
// during the fast-path walk (the job-progress hook; escalations do not add
// progress, the path was already counted).
//
// The returned result carries Method "proxy"; the stats record the
// proxy-vs-escalated split and the realized |proxy - full| error over the
// escalated paths. Everything is deterministic in (block, valuer seed,
// proxy).
func (p *Proxy) Value(ctx context.Context, v *alm.Valuer, onPath func()) (*alm.Result, Stats, error) {
	block := v.Block()
	n := block.Outer
	y1 := make([]float64, n)
	discount := make([]float64, n)
	bands := make([]float64, n)

	err := v.WalkOuter(ctx, 0, n, func(i int, st alm.OuterState) error {
		y1[i], bands[i] = p.Predict(v.Features(st))
		discount[i] = st.Discount
		if onPath != nil {
			onPath()
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}

	// Gate: budget busts ordered worst band first (index breaks ties so the
	// escalated set is deterministic), truncated at the escalation cap.
	tol := p.spec.ErrorBudget * p.scale
	var busts []int
	for i, b := range bands {
		if b > tol {
			busts = append(busts, i)
		}
	}
	sort.Slice(busts, func(a, b int) bool {
		if bands[busts[a]] != bands[busts[b]] {
			return bands[busts[a]] > bands[busts[b]]
		}
		return busts[a] < busts[b]
	})
	cap := int(math.Ceil(p.spec.EscalationCap * float64(n)))
	escalate := busts
	if len(escalate) > cap {
		escalate = escalate[:cap]
	}

	stats := p.stats
	stats.Evaluated = n
	stats.Escalated = len(escalate)
	stats.Proxied = n - len(escalate)
	stats.BudgetBusts = len(busts)

	if len(escalate) > 0 {
		exact, err := v.ValueOuters(ctx, escalate, block.Inner, nil)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("proxyval: escalation: %w", err)
		}
		realized := make([]float64, len(escalate))
		for k, i := range escalate {
			realized[k] = math.Abs(y1[i] - exact[k])
			y1[i] = exact[k]
		}
		stats.RealizedMAE = finmath.Mean(realized)
		stats.RealizedMaxAbs = finmath.Max(realized)
		stats.RealizedRelMAE = stats.RealizedMAE / p.scale
	}

	discounted := make([]float64, n)
	for i := range y1 {
		discounted[i] = discount[i] * y1[i]
	}
	return alm.Summarize(y1, discounted, "proxy"), stats, nil
}
