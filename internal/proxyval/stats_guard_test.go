package proxyval

import (
	"math"
	"testing"
)

// TestHitRateGuardTable pins the empty-telemetry guard on the hit-rate
// gauge the cluster and proxy status endpoints surface: every degenerate
// counter state must read as a finite fraction in [0, 1], never NaN.
func TestHitRateGuardTable(t *testing.T) {
	cases := []struct {
		name      string
		proxied   int
		evaluated int
		want      float64
	}{
		{name: "nothing evaluated"},
		{name: "proxied but zero evaluated (inconsistent counters)", proxied: 5},
		{name: "all escalated", proxied: 0, evaluated: 10, want: 0},
		{name: "all fast path", proxied: 10, evaluated: 10, want: 1},
		{name: "mixed", proxied: 3, evaluated: 12, want: 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Stats{Proxied: tc.proxied, Evaluated: tc.evaluated}
			got := s.HitRate()
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("HitRate = %v, want finite", got)
			}
			if got != tc.want {
				t.Fatalf("HitRate = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestStatsMergeGuardTable pins Merge's zero-sample guards: merging empty
// telemetry into empty telemetry must not manufacture NaNs in the weighted
// means or the RMSE combination.
func TestStatsMergeGuardTable(t *testing.T) {
	cases := []struct {
		name string
		a, b Stats
	}{
		{name: "both empty"},
		{name: "empty absorbs data", b: Stats{Evaluated: 4, Proxied: 2, Scale: 100, Validation: 3, ValidationMAE: 1.5, ValidationRMSE: 2}},
		{name: "data absorbs empty", a: Stats{Evaluated: 4, Proxied: 2, Scale: 100, Validation: 3, ValidationMAE: 1.5, ValidationRMSE: 2}},
		{name: "escalations only on one side", a: Stats{Escalated: 2, RealizedMAE: 0.5}, b: Stats{Evaluated: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.a
			s.Merge(tc.b)
			for label, v := range map[string]float64{
				"Scale":            s.Scale,
				"ValidationMAE":    s.ValidationMAE,
				"ValidationRelMAE": s.ValidationRelMAE,
				"ValidationRMSE":   s.ValidationRMSE,
				"RealizedMAE":      s.RealizedMAE,
				"RealizedRelMAE":   s.RealizedRelMAE,
				"HitRate":          s.HitRate(),
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v after merge, want finite", label, v)
				}
			}
		})
	}
}
