package proxyval

import (
	"context"
	"testing"

	"disarcloud/internal/alm"
)

// BenchmarkProxyValuation compares per-outer-path valuation throughput of
// the proxy fast path against the full nested pipeline on an
// internal-model-grade block (many inner paths). The fast path prices one
// outer path with a single model evaluation; the full path runs
// block.Inner conditional simulations — the ratio of the two ns/op figures
// is the serving-tier speedup reported by experiments.RunProxyComparison.
func BenchmarkProxyValuation(b *testing.B) {
	const outer, inner = 64, 100
	v := testValuer(b, outer, inner, 42)
	p, err := Train(context.Background(), v, Spec{TrainOuter: 48, Model: ModelPoly}, 7)
	if err != nil {
		b.Fatal(err)
	}
	feats := make([][]float64, outer)
	err = v.WalkOuter(context.Background(), 0, outer, func(i int, st alm.OuterState) error {
		feats[i] = v.Features(st)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.ValueOuter(i%outer, inner)
		}
	})
	b.Run("proxy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Predict(feats[i%outer])
		}
	})
	b.Run("cascade", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Value(context.Background(), v, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
