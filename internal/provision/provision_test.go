package provision

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"disarcloud/internal/cloud"
	"disarcloud/internal/eeb"
	"disarcloud/internal/finmath"
	"disarcloud/internal/kb"
)

func params() eeb.CharacteristicParams {
	return eeb.CharacteristicParams{
		RepresentativeContracts: 15, MaxHorizon: 25, FundAssets: 8,
		RiskFactors: 3, OuterPaths: 1000, InnerPaths: 50,
	}
}

// perfPredictor wraps the ground-truth performance model as an oracle
// predictor, isolating Algorithm 1's logic from ML noise in tests.
type perfPredictor struct {
	pm        cloud.PerfModel
	untrained map[string]bool
}

func (p *perfPredictor) PredictSeconds(arch string, nodes int, f eeb.CharacteristicParams) (float64, error) {
	if p.untrained[arch] {
		return 0, ErrUntrained
	}
	it, ok := cloud.TypeByName(arch)
	if !ok {
		return 0, errors.New("unknown arch")
	}
	return p.pm.MeanExecSeconds(it, nodes, f), nil
}

func newOracle() *perfPredictor {
	return &perfPredictor{pm: cloud.DefaultPerfModel(), untrained: map[string]bool{}}
}

func TestConstraintsValidate(t *testing.T) {
	good := Constraints{TmaxSeconds: 600, MaxNodes: 8, Epsilon: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Constraints{
		{TmaxSeconds: 0, MaxNodes: 8},
		{TmaxSeconds: 600, MaxNodes: 0},
		{TmaxSeconds: 600, MaxNodes: 8, Epsilon: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad constraints %d accepted", i)
		}
	}
}

func TestSelectorValidation(t *testing.T) {
	rng := finmath.NewRNG(1)
	if _, err := NewSelector(nil, nil, rng); err == nil {
		t.Fatal("nil predictor accepted")
	}
	if _, err := NewSelector(newOracle(), nil, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewSelector(newOracle(), []cloud.InstanceType{}, rng); err == nil {
		t.Fatal("empty catalog accepted")
	}
}

func TestSelectPicksCheapestFeasible(t *testing.T) {
	s, err := NewSelector(newOracle(), nil, finmath.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	c := Constraints{TmaxSeconds: 400, MaxNodes: 8, Epsilon: 0}
	choice, err := s.Select(context.Background(), params(), c)
	if err != nil {
		t.Fatal(err)
	}
	if choice.PredictedSeconds > c.TmaxSeconds {
		t.Fatalf("selected config misses deadline: %v", choice)
	}
	// Exhaustively verify minimality against the oracle.
	cands, _ := s.Candidates(context.Background(), params(), c)
	for _, cand := range cands {
		if cand.PredictedCost < choice.PredictedCost {
			t.Fatalf("cheaper feasible candidate exists: %v < %v", cand, choice)
		}
	}
	if choice.Explored {
		t.Fatal("epsilon=0 must not explore")
	}
}

func TestSelectRespectsTightDeadline(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(1))
	// A tight deadline forces bigger (more expensive) configurations.
	loose, err := s.Select(context.Background(), params(), Constraints{TmaxSeconds: 500, MaxNodes: 8, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := s.Select(context.Background(), params(), Constraints{TmaxSeconds: 220, MaxNodes: 8, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if tight.PredictedCost < loose.PredictedCost {
		t.Fatalf("tight deadline cheaper than loose: %v vs %v", tight, loose)
	}
	if tight.PredictedSeconds > 220 {
		t.Fatalf("deadline violated: %v", tight)
	}
}

func TestSelectNoFeasible(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(1))
	_, err := s.Select(context.Background(), params(), Constraints{TmaxSeconds: 1, MaxNodes: 2, Epsilon: 0})
	if !errors.Is(err, ErrNoFeasible) {
		t.Fatalf("want ErrNoFeasible, got %v", err)
	}
}

func TestSelectUntrainedArchitecturesSkipped(t *testing.T) {
	oracle := newOracle()
	for _, it := range cloud.Catalog() {
		oracle.untrained[it.Name] = true
	}
	oracle.untrained["c3.4xlarge"] = false
	s, _ := NewSelector(oracle, nil, finmath.NewRNG(1))
	choice, err := s.Select(context.Background(), params(), Constraints{TmaxSeconds: 600, MaxNodes: 8, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if choice.Primary().Type.Name != "c3.4xlarge" {
		t.Fatalf("selected untrained architecture: %v", choice)
	}
}

func TestSelectAllUntrained(t *testing.T) {
	oracle := newOracle()
	for _, it := range cloud.Catalog() {
		oracle.untrained[it.Name] = true
	}
	s, _ := NewSelector(oracle, nil, finmath.NewRNG(1))
	_, err := s.Select(context.Background(), params(), Constraints{TmaxSeconds: 600, MaxNodes: 4, Epsilon: 0})
	if !errors.Is(err, ErrUntrained) {
		t.Fatalf("want ErrUntrained, got %v", err)
	}
}

func TestEpsilonGreedyExplores(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(42))
	c := Constraints{TmaxSeconds: 600, MaxNodes: 8, Epsilon: 0.5}
	explored, exploited := 0, 0
	for i := 0; i < 200; i++ {
		choice, err := s.Select(context.Background(), params(), c)
		if err != nil {
			t.Fatal(err)
		}
		if choice.PredictedSeconds > c.TmaxSeconds {
			t.Fatal("exploration violated the deadline filter")
		}
		if choice.Explored {
			explored++
		} else {
			exploited++
		}
	}
	if explored < 60 || explored > 140 {
		t.Fatalf("explored %d of 200 with epsilon 0.5", explored)
	}
	if exploited == 0 {
		t.Fatal("never exploited")
	}
}

func TestSelectFastest(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(1))
	fast, err := s.SelectFastest(context.Background(), params(), 8)
	if err != nil {
		t.Fatal(err)
	}
	cands, _ := s.Candidates(context.Background(), params(), Constraints{TmaxSeconds: 1e18, MaxNodes: 8, Epsilon: 0})
	for _, cand := range cands {
		if cand.PredictedSeconds < fast.PredictedSeconds {
			t.Fatalf("faster candidate exists: %v < %v", cand, fast)
		}
	}
}

func TestHeterogeneousExtension(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(3))
	s.Heterogeneous = true
	c := Constraints{TmaxSeconds: 600, MaxNodes: 4, Epsilon: 0}
	cands, err := s.Candidates(context.Background(), params(), c)
	if err != nil {
		t.Fatal(err)
	}
	hasHet := false
	for _, cand := range cands {
		if len(cand.Slots) == 2 {
			hasHet = true
			if cand.Slots[0].Type.Name == cand.Slots[1].Type.Name {
				t.Fatal("heterogeneous slot with identical types")
			}
			if cand.TotalNodes() > c.MaxNodes {
				t.Fatalf("mix exceeds node budget: %v", cand)
			}
			if cand.PredictedSeconds > c.TmaxSeconds {
				t.Fatal("infeasible mix returned")
			}
		}
	}
	if !hasHet {
		t.Fatal("no heterogeneous candidates generated")
	}
	// A mix is never slower than its slower half run alone.
	choice, err := s.Select(context.Background(), params(), c)
	if err != nil {
		t.Fatal(err)
	}
	if choice.PredictedSeconds > c.TmaxSeconds {
		t.Fatal("heterogeneous selection misses deadline")
	}
}

func TestChoiceString(t *testing.T) {
	it, _ := cloud.TypeByName("c3.4xlarge")
	ch := Choice{Slots: []Slot{{Type: it, Nodes: 3}}, PredictedSeconds: 120, PredictedCost: 0.084}
	s := ch.String()
	if !strings.Contains(s, "3xc3.4xlarge") {
		t.Fatalf("String = %q", s)
	}
}

func TestEnsemblePredictorLifecycle(t *testing.T) {
	p := NewEnsemblePredictor(7)
	if p.Trained("c3.4xlarge") {
		t.Fatal("untrained predictor claims training")
	}
	if _, err := p.PredictSeconds("c3.4xlarge", 1, params()); !errors.Is(err, ErrUntrained) {
		t.Fatalf("want ErrUntrained, got %v", err)
	}

	// Build a synthetic KB from the ground-truth model.
	pm := cloud.DefaultPerfModel()
	k := kb.New()
	rng := finmath.NewRNG(99)
	it, _ := cloud.TypeByName("c3.4xlarge")
	for i := 0; i < 80; i++ {
		f := params()
		f.RepresentativeContracts = 5 + rng.Intn(60)
		f.MaxHorizon = 5 + rng.Intn(35)
		n := 1 + rng.Intn(8)
		if err := k.Add(kb.Sample{
			Architecture: it.Name, Nodes: n, Params: f,
			Seconds: pm.ExecSeconds(rng, it, n, f),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Retrain(k); err != nil {
		t.Fatal(err)
	}
	if !p.Trained(it.Name) {
		t.Fatal("predictor not trained after Retrain")
	}
	// Sanity: predictions within a factor 2 of ground truth for in-range
	// queries.
	f := params()
	f.RepresentativeContracts = 30
	f.MaxHorizon = 20
	got, err := p.PredictSeconds(it.Name, 4, f)
	if err != nil {
		t.Fatal(err)
	}
	want := pm.MeanExecSeconds(it, 4, f)
	if got < want/2 || got > want*2 {
		t.Fatalf("ensemble prediction %v vs ground truth %v", got, want)
	}
	per, err := p.PredictPerModel(it.Name, 4, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 6 {
		t.Fatalf("per-model map has %d entries", len(per))
	}
	mean := 0.0
	for _, v := range per {
		mean += v
	}
	mean /= 6
	if math.Abs(mean-got) > 1e-9 {
		t.Fatal("ensemble average inconsistent with per-model predictions")
	}
}

func TestRetrainSkipsSparseArchitectures(t *testing.T) {
	p := NewEnsemblePredictor(1)
	k := kb.New()
	rng := finmath.NewRNG(5)
	pm := cloud.DefaultPerfModel()
	it, _ := cloud.TypeByName("m4.4xlarge")
	for i := 0; i < MinSamplesToTrain-1; i++ {
		_ = k.Add(kb.Sample{
			Architecture: it.Name, Nodes: 1, Params: params(),
			Seconds: pm.ExecSeconds(rng, it, 1, params()),
		})
	}
	if err := p.Retrain(k); err != nil {
		t.Fatal(err)
	}
	if p.Trained(it.Name) {
		t.Fatal("trained below the sample threshold")
	}
}

// TestSelectConcurrentExploration hammers Select from 8 goroutines with a
// high exploration probability. finmath.RNG is not safe for concurrent use;
// the selector must serialise its epsilon-greedy draws (run under -race —
// the CI suite does — to catch an unguarded generator). Every returned
// choice must still be a valid feasible candidate.
func TestSelectConcurrentExploration(t *testing.T) {
	s, err := NewSelector(newOracle(), nil, finmath.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	c := Constraints{TmaxSeconds: 600, MaxNodes: 8, Epsilon: 0.9}
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				ch, err := s.Select(context.Background(), params(), c)
				if err != nil {
					errs <- err
					return
				}
				if ch.TotalNodes() < 1 || ch.TotalNodes() > c.MaxNodes {
					errs <- fmt.Errorf("selected %d nodes outside [1,%d]", ch.TotalNodes(), c.MaxNodes)
					return
				}
				if ch.PredictedSeconds > c.TmaxSeconds {
					errs <- fmt.Errorf("selected infeasible config: %v", ch)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
