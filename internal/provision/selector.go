package provision

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"disarcloud/internal/cloud"
	"disarcloud/internal/eeb"
	"disarcloud/internal/finmath"
)

// ErrNoFeasible is returned when no configuration meets the deadline.
var ErrNoFeasible = errors.New("provision: no configuration meets the time constraint")

// Constraints are the user-side inputs to Algorithm 1.
type Constraints struct {
	// TmaxSeconds is the Solvency II-driven deadline for the simulation.
	TmaxSeconds float64
	// MaxNodes bounds the number of VMs explored (the algorithm's N = [1, max]).
	MaxNodes int
	// Epsilon is the exploration probability: with chance Epsilon a random
	// feasible configuration is selected instead of the cheapest.
	Epsilon float64
}

// Validate reports whether the constraints are admissible.
func (c Constraints) Validate() error {
	if c.TmaxSeconds <= 0 {
		return errors.New("provision: Tmax must be positive")
	}
	if c.MaxNodes <= 0 {
		return errors.New("provision: MaxNodes must be positive")
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return errors.New("provision: epsilon outside [0,1]")
	}
	return nil
}

// Slot is one homogeneous group of VMs in a deploy.
type Slot struct {
	Type  cloud.InstanceType
	Nodes int
}

// Choice is a selected deploy configuration.
type Choice struct {
	// Slots has one entry for homogeneous deploys (the paper's setting) and
	// two for the heterogeneous extension (the paper's future work).
	Slots []Slot
	// PredictedSeconds is the ensemble-predicted execution time.
	PredictedSeconds float64
	// PredictedCost is the expected pro-rata cost in dollars:
	// hour_cost * time (Algorithm 1).
	PredictedCost float64
	// Explored is true when the epsilon-greedy branch picked a random
	// feasible configuration.
	Explored bool
}

// Primary returns the first slot (the whole deploy when homogeneous).
func (c Choice) Primary() Slot { return c.Slots[0] }

// TotalNodes returns the VM count across slots.
func (c Choice) TotalNodes() int {
	n := 0
	for _, s := range c.Slots {
		n += s.Nodes
	}
	return n
}

// String implements fmt.Stringer.
func (c Choice) String() string {
	s := ""
	for i, slot := range c.Slots {
		if i > 0 {
			s += "+"
		}
		s += fmt.Sprintf("%dx%s", slot.Nodes, slot.Type.Name)
	}
	return fmt.Sprintf("%s (pred %.0fs, $%.3f)", s, c.PredictedSeconds, c.PredictedCost)
}

// Selector implements Algorithm 1 over a predictor and an instance catalog.
//
// Select is safe for concurrent use: the exploration RNG is not, so its
// draws are serialised by an internal mutex. The Deployer additionally
// serialises whole deploy loops, but the selector is exposed through
// Deployer.Selector() and must not rely on that outer lock — concurrent
// Submit through a resizable pool may reach Select from many goroutines.
type Selector struct {
	pred    Predictor
	catalog []cloud.InstanceType

	// rngMu guards rng: finmath.RNG is not safe for concurrent use, and an
	// unguarded epsilon-greedy draw under concurrent Select calls is a data
	// race on the generator state.
	rngMu sync.Mutex
	rng   *finmath.RNG

	// Heterogeneous enables the future-work extension: two-slot deploys
	// mixing distinct instance types, with work split proportionally to
	// each slot's predicted throughput.
	Heterogeneous bool
}

// NewSelector builds a selector over the given catalog (nil = full catalog).
func NewSelector(pred Predictor, catalog []cloud.InstanceType, rng *finmath.RNG) (*Selector, error) {
	if pred == nil {
		return nil, errors.New("provision: nil predictor")
	}
	if rng == nil {
		return nil, errors.New("provision: nil rng")
	}
	if catalog == nil {
		catalog = cloud.Catalog()
	}
	if len(catalog) == 0 {
		return nil, errors.New("provision: empty catalog")
	}
	return &Selector{pred: pred, catalog: catalog, rng: rng}, nil
}

// Candidates enumerates every feasible configuration for the workload: all
// (architecture, node count) pairs whose ensemble-predicted time is within
// Tmax, each annotated with its expected cost. Architectures without
// trained models are skipped; if every architecture is untrained the
// returned error wraps ErrUntrained. The enumeration honours ctx: a
// cancelled context aborts mid-catalog and returns ctx.Err().
func (s *Selector) Candidates(ctx context.Context, f eeb.CharacteristicParams, c Constraints) ([]Choice, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var out []Choice
	trainedAny := false
	for _, it := range s.catalog {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for n := 1; n <= c.MaxNodes; n++ {
			secs, err := s.pred.PredictSeconds(it.Name, n, f)
			if errors.Is(err, ErrUntrained) {
				break // no model for this architecture at any n
			}
			if err != nil {
				return nil, err
			}
			trainedAny = true
			if secs > c.TmaxSeconds {
				continue
			}
			out = append(out, Choice{
				Slots:            []Slot{{Type: it, Nodes: n}},
				PredictedSeconds: secs,
				PredictedCost:    cloud.ProRataCost(it, n, secs),
			})
		}
	}
	if s.Heterogeneous {
		het, err := s.heterogeneousCandidates(ctx, f, c)
		if err != nil {
			return nil, err
		}
		out = append(out, het...)
	}
	if !trainedAny {
		return nil, fmt.Errorf("%w: all architectures", ErrUntrained)
	}
	return out, nil
}

// heterogeneousCandidates enumerates two-slot mixes of distinct types. The
// combined time models a proportional split of the outer scenarios: each
// slot processes work at rate 1/t_slot, so the mix finishes in
// 1/(1/tA + 1/tB) — both slots run for the full duration and are billed for
// it.
func (s *Selector) heterogeneousCandidates(ctx context.Context, f eeb.CharacteristicParams, c Constraints) ([]Choice, error) {
	var out []Choice
	for i, a := range s.catalog {
		for _, b := range s.catalog[i+1:] {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for na := 1; na < c.MaxNodes; na++ {
				ta, errA := s.pred.PredictSeconds(a.Name, na, f)
				if errors.Is(errA, ErrUntrained) {
					break
				}
				if errA != nil {
					return nil, errA
				}
				for nb := 1; na+nb <= c.MaxNodes; nb++ {
					tb, errB := s.pred.PredictSeconds(b.Name, nb, f)
					if errors.Is(errB, ErrUntrained) {
						break
					}
					if errB != nil {
						return nil, errB
					}
					t := 1 / (1/ta + 1/tb)
					if t > c.TmaxSeconds {
						continue
					}
					cost := cloud.ProRataCost(a, na, t) + cloud.ProRataCost(b, nb, t)
					out = append(out, Choice{
						Slots:            []Slot{{Type: a, Nodes: na}, {Type: b, Nodes: nb}},
						PredictedSeconds: t,
						PredictedCost:    cost,
					})
				}
			}
		}
	}
	return out, nil
}

// Select runs Algorithm 1: among feasible candidates pick the cheapest, or
// with probability epsilon a uniformly random feasible one (exploration,
// which enlarges the knowledge base and reduces false positives on the
// expected execution time).
func (s *Selector) Select(ctx context.Context, f eeb.CharacteristicParams, c Constraints) (Choice, error) {
	cands, err := s.Candidates(ctx, f, c)
	if err != nil {
		return Choice{}, err
	}
	if len(cands) == 0 {
		return Choice{}, ErrNoFeasible
	}
	s.rngMu.Lock()
	explore := s.rng.Float64() < c.Epsilon
	pick := 0
	if explore {
		pick = s.rng.Intn(len(cands))
	}
	s.rngMu.Unlock()
	if explore {
		ch := cands[pick]
		ch.Explored = true
		return ch, nil
	}
	best := cands[0]
	for _, ch := range cands[1:] {
		if ch.PredictedCost < best.PredictedCost {
			best = ch
		}
	}
	return best, nil
}

// SelectFastest returns the feasibility-unconstrained minimum-time
// configuration — the fallback when no candidate meets Tmax and the
// baseline for the paper's final comparison against the "higher-end VM".
func (s *Selector) SelectFastest(ctx context.Context, f eeb.CharacteristicParams, maxNodes int) (Choice, error) {
	cands, err := s.Candidates(ctx, f, Constraints{
		TmaxSeconds: 1e18, MaxNodes: maxNodes, Epsilon: 0,
	})
	if err != nil {
		return Choice{}, err
	}
	if len(cands) == 0 {
		return Choice{}, ErrNoFeasible
	}
	best := cands[0]
	for _, ch := range cands[1:] {
		if ch.PredictedSeconds < best.PredictedSeconds {
			best = ch
		}
	}
	return best, nil
}
