package provision

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"disarcloud/internal/cloud"
	"disarcloud/internal/eeb"
	"disarcloud/internal/finmath"
)

// ErrNoFeasible is returned when no configuration meets the deadline.
var ErrNoFeasible = errors.New("provision: no configuration meets the time constraint")

// ErrOverBudget is returned (wrapped in *OverBudgetError) when deadline-
// feasible configurations exist but none fits the MaxCost budget.
var ErrOverBudget = errors.New("provision: no feasible configuration within budget")

// OverBudgetError reports a budget-infeasible selection together with the
// cheapest deadline-feasible price, so callers can tell the user what
// budget would have worked. Waiting does not help — unlike admission
// backpressure there is no Retry-After story for money.
type OverBudgetError struct {
	// CheapestUSD is the lowest conservative billed estimate among
	// deadline-feasible candidates.
	CheapestUSD float64
	// MaxCostUSD is the budget that was offered.
	MaxCostUSD float64
}

// Error implements error.
func (e *OverBudgetError) Error() string {
	return fmt.Sprintf("provision: cheapest feasible deploy costs $%.2f, budget is $%.2f", e.CheapestUSD, e.MaxCostUSD)
}

// Unwrap lets errors.Is(err, ErrOverBudget) work.
func (e *OverBudgetError) Unwrap() error { return ErrOverBudget }

// Constraints are the user-side inputs to Algorithm 1.
type Constraints struct {
	// TmaxSeconds is the Solvency II-driven deadline for the simulation.
	TmaxSeconds float64
	// MaxNodes bounds the number of VMs explored (the algorithm's N = [1, max]).
	MaxNodes int
	// Epsilon is the exploration probability: with chance Epsilon a random
	// feasible configuration is selected instead of the cheapest.
	Epsilon float64
	// MaxCost caps the conservative billed estimate of the selected deploy
	// in dollars; 0 means unbounded. Campaign submissions share one budget
	// across modules, so the cap a given Select call sees is usually the
	// campaign's remaining balance, not the original figure.
	MaxCost float64
	// Tiers lists the purchase tiers the selector may enumerate, in
	// preference order. Empty means on-demand only — the pre-cost-plane
	// behaviour, preserved bit-for-bit.
	Tiers []cloud.Tier
}

// Validate reports whether the constraints are admissible.
func (c Constraints) Validate() error {
	if c.TmaxSeconds <= 0 {
		return errors.New("provision: Tmax must be positive")
	}
	if c.MaxNodes <= 0 {
		return errors.New("provision: MaxNodes must be positive")
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return errors.New("provision: epsilon outside [0,1]")
	}
	if c.MaxCost < 0 || math.IsNaN(c.MaxCost) || math.IsInf(c.MaxCost, 0) {
		return errors.New("provision: MaxCost must be finite and non-negative")
	}
	for _, t := range c.Tiers {
		if !t.Valid() {
			return fmt.Errorf("provision: invalid tier %v", t)
		}
	}
	return nil
}

// EffectiveTiers returns the tier set Select enumerates: the configured
// list, or on-demand alone when none was given.
func (c Constraints) EffectiveTiers() []cloud.Tier {
	if len(c.Tiers) == 0 {
		return []cloud.Tier{cloud.TierOnDemand}
	}
	return c.Tiers
}

// Slot is one homogeneous group of VMs in a deploy.
type Slot struct {
	Type  cloud.InstanceType
	Nodes int
}

// Choice is a selected deploy configuration.
type Choice struct {
	// Slots has one entry for homogeneous deploys (the paper's setting) and
	// two for the heterogeneous extension (the paper's future work).
	Slots []Slot
	// Tier is the purchase tier the deploy runs under.
	Tier cloud.Tier
	// PredictedSeconds is the ensemble-predicted execution time. For spot
	// candidates it includes the revocation-probability-weighted re-slice
	// penalty: spot is slower in expectation, not just cheaper.
	PredictedSeconds float64
	// PredictedCost is the expected pro-rata cost in dollars at the tier's
	// expected hourly price: hour_cost * time (Algorithm 1).
	PredictedCost float64
	// PredictedBilledUSD is the conservative hour-rounded reservation the
	// budget accountant holds for this deploy: predicted time plus headroom,
	// billed at the tier's expected rate, minimum one hour.
	PredictedBilledUSD float64
	// Explored is true when the epsilon-greedy branch picked a random
	// feasible configuration.
	Explored bool
}

// Primary returns the first slot (the whole deploy when homogeneous).
func (c Choice) Primary() Slot { return c.Slots[0] }

// TotalNodes returns the VM count across slots.
func (c Choice) TotalNodes() int {
	n := 0
	for _, s := range c.Slots {
		n += s.Nodes
	}
	return n
}

// String implements fmt.Stringer.
func (c Choice) String() string {
	s := ""
	for i, slot := range c.Slots {
		if i > 0 {
			s += "+"
		}
		s += fmt.Sprintf("%dx%s", slot.Nodes, slot.Type.Name)
	}
	if c.Tier != cloud.TierOnDemand {
		s += " " + c.Tier.String()
	}
	return fmt.Sprintf("%s (pred %.0fs, $%.3f)", s, c.PredictedSeconds, c.PredictedCost)
}

// Selector implements Algorithm 1 over a predictor and an instance catalog.
//
// Select is safe for concurrent use: the exploration RNG is not, so its
// draws are serialised by an internal mutex. The Deployer additionally
// serialises whole deploy loops, but the selector is exposed through
// Deployer.Selector() and must not rely on that outer lock — concurrent
// Submit through a resizable pool may reach Select from many goroutines.
type Selector struct {
	pred    Predictor
	catalog []cloud.InstanceType

	// Schedule prices candidates across tiers; NewSelector defaults it to
	// the calibrated default schedule. It should be the same schedule the
	// provider bills against, or predicted and billed dollars diverge.
	Schedule *cloud.PriceSchedule

	// rngMu guards rng: finmath.RNG is not safe for concurrent use, and an
	// unguarded epsilon-greedy draw under concurrent Select calls is a data
	// race on the generator state.
	rngMu sync.Mutex
	rng   *finmath.RNG

	// Heterogeneous enables the future-work extension: two-slot deploys
	// mixing distinct instance types, with work split proportionally to
	// each slot's predicted throughput.
	Heterogeneous bool
}

// NewSelector builds a selector over the given catalog (nil = full catalog).
func NewSelector(pred Predictor, catalog []cloud.InstanceType, rng *finmath.RNG) (*Selector, error) {
	if pred == nil {
		return nil, errors.New("provision: nil predictor")
	}
	if rng == nil {
		return nil, errors.New("provision: nil rng")
	}
	if catalog == nil {
		catalog = cloud.Catalog()
	}
	if len(catalog) == 0 {
		return nil, errors.New("provision: empty catalog")
	}
	return &Selector{pred: pred, catalog: catalog, rng: rng, Schedule: cloud.DefaultPriceSchedule()}, nil
}

// schedule returns the selector's price schedule, defaulting lazily so a
// zero-value-constructed selector still prices sanely.
func (s *Selector) schedule() *cloud.PriceSchedule {
	if s.Schedule == nil {
		s.Schedule = cloud.DefaultPriceSchedule()
	}
	return s.Schedule
}

// reservationHeadroomFactor / reservationHeadroomSeconds pad the predicted
// duration before hour-rounding it into a budget reservation: predictions
// err both ways and boot time is not in the prediction at all, so the
// accountant holds 25% slack plus ten boot-ish minutes and releases the
// difference at settlement.
const (
	reservationHeadroomFactor  = 1.25
	reservationHeadroomSeconds = 600
)

// BilledEstimate is the conservative hour-rounded dollar reservation for a
// choice under the given schedule: headroom-padded predicted duration at
// the choice's tier, summed across slots, minimum one billing hour each.
// The budget accountant reserves this figure before a deploy and settles
// to the actual bill after.
func BilledEstimate(ps *cloud.PriceSchedule, ch Choice) float64 {
	secs := ch.PredictedSeconds*reservationHeadroomFactor + reservationHeadroomSeconds
	total := 0.0
	for _, slot := range ch.Slots {
		hours := math.Ceil(secs / 3600)
		if hours < 1 {
			hours = 1
		}
		total += hours * ps.ExpectedHourlyUSD(slot.Type, ch.Tier) * float64(slot.Nodes)
	}
	return total
}

// Candidates enumerates every feasible configuration for the workload: all
// (architecture, node count, tier) triples whose ensemble-predicted time —
// inflated, for spot, by the revocation-probability-weighted re-slice
// penalty — is within Tmax, each annotated with its expected cost and its
// conservative billed reservation. Architectures without trained models
// are skipped; if every architecture is untrained the returned error wraps
// ErrUntrained. The enumeration honours ctx: a cancelled context aborts
// mid-catalog and returns ctx.Err().
func (s *Selector) Candidates(ctx context.Context, f eeb.CharacteristicParams, c Constraints) ([]Choice, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	ps := s.schedule()
	tiers := c.EffectiveTiers()
	var out []Choice
	trainedAny := false
	for _, it := range s.catalog {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for n := 1; n <= c.MaxNodes; n++ {
			secs, err := s.pred.PredictSeconds(it.Name, n, f)
			if errors.Is(err, ErrUntrained) {
				break // no model for this architecture at any n
			}
			if err != nil {
				return nil, err
			}
			trainedAny = true
			for _, tier := range tiers {
				tierSecs := secs
				if tier == cloud.TierSpot {
					tierSecs = spotInflatedSeconds(secs, n, ps.Spot.RevocationsPerHour)
				}
				if tierSecs > c.TmaxSeconds {
					continue
				}
				ch := Choice{
					Slots:            []Slot{{Type: it, Nodes: n}},
					Tier:             tier,
					PredictedSeconds: tierSecs,
					PredictedCost:    ps.ProRataCost(it, tier, n, tierSecs),
				}
				ch.PredictedBilledUSD = BilledEstimate(ps, ch)
				out = append(out, ch)
			}
		}
	}
	if s.Heterogeneous {
		het, err := s.heterogeneousCandidates(ctx, f, c)
		if err != nil {
			return nil, err
		}
		out = append(out, het...)
	}
	if !trainedAny {
		return nil, fmt.Errorf("%w: all architectures", ErrUntrained)
	}
	return out, nil
}

// spotInflatedSeconds stretches a spot candidate's predicted duration by
// the expected re-slice cost of revocations: each event loses one VM's
// share of the remaining work onto n-1 survivors (the whole remainder for
// a single VM). The inflation is conservative — it charges the full
// remaining duration per expected event rather than the half an average
// event position would suggest — because a deadline miss costs an SLA
// breach while pessimism merely forgoes a marginal candidate.
func spotInflatedSeconds(secs float64, n int, revsPerHour float64) float64 {
	if revsPerHour <= 0 || secs <= 0 {
		return secs
	}
	expectedEvents := revsPerHour * secs / 3600
	survivors := float64(n - 1)
	if survivors < 1 {
		survivors = 1
	}
	return secs * (1 + expectedEvents/survivors)
}

// heterogeneousCandidates enumerates two-slot mixes of distinct types. The
// combined time models a proportional split of the outer scenarios: each
// slot processes work at rate 1/t_slot, so the mix finishes in
// 1/(1/tA + 1/tB) — both slots run for the full duration and are billed for
// it.
func (s *Selector) heterogeneousCandidates(ctx context.Context, f eeb.CharacteristicParams, c Constraints) ([]Choice, error) {
	var out []Choice
	for i, a := range s.catalog {
		for _, b := range s.catalog[i+1:] {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for na := 1; na < c.MaxNodes; na++ {
				ta, errA := s.pred.PredictSeconds(a.Name, na, f)
				if errors.Is(errA, ErrUntrained) {
					break
				}
				if errA != nil {
					return nil, errA
				}
				for nb := 1; na+nb <= c.MaxNodes; nb++ {
					tb, errB := s.pred.PredictSeconds(b.Name, nb, f)
					if errors.Is(errB, ErrUntrained) {
						break
					}
					if errB != nil {
						return nil, errB
					}
					t := 1 / (1/ta + 1/tb)
					if t > c.TmaxSeconds {
						continue
					}
					cost := cloud.ProRataCost(a, na, t) + cloud.ProRataCost(b, nb, t)
					// Mixed-type deploys stay on-demand: the re-slice
					// penalty model assumes interchangeable survivors.
					ch := Choice{
						Slots:            []Slot{{Type: a, Nodes: na}, {Type: b, Nodes: nb}},
						Tier:             cloud.TierOnDemand,
						PredictedSeconds: t,
						PredictedCost:    cost,
					}
					ch.PredictedBilledUSD = BilledEstimate(s.schedule(), ch)
					out = append(out, ch)
				}
			}
		}
	}
	return out, nil
}

// Frontier returns the cost-vs-deadline Pareto frontier of the given
// candidates, ordered cheapest-first: each successive point costs more and
// finishes strictly sooner. The ordering among equal-cost candidates is
// stable in the input order, so the frontier's first element is exactly
// the candidate Algorithm 1's cheapest-first scan would pick.
func Frontier(cands []Choice) []Choice {
	if len(cands) == 0 {
		return nil
	}
	byCost := make([]Choice, len(cands))
	copy(byCost, cands)
	// Stability is load-bearing: it keeps equal-cost candidates in input
	// order, so the frontier's first element is exactly the candidate the
	// original cheapest-first scan would pick.
	sort.SliceStable(byCost, func(i, j int) bool {
		return byCost[i].PredictedCost < byCost[j].PredictedCost
	})
	out := byCost[:0]
	bestSecs := math.Inf(1)
	for _, ch := range byCost {
		if len(out) > 0 && ch.PredictedSeconds >= bestSecs {
			continue // dominated: costs at least as much, not faster
		}
		out = append(out, ch)
		bestSecs = ch.PredictedSeconds
	}
	return out
}

// Select runs the cost-aware Algorithm 1: enumerate (type, nodes, tier)
// candidates inside Tmax, drop those whose conservative billed reservation
// exceeds the MaxCost budget, then pick the cheapest point of the Pareto
// frontier — or, with probability epsilon, a uniformly random affordable
// candidate (exploration, which enlarges the knowledge base and reduces
// false positives on the expected execution time).
//
// Deadline-feasible but budget-infeasible workloads return an
// *OverBudgetError naming the cheapest feasible price; no candidates at
// all returns ErrNoFeasible.
func (s *Selector) Select(ctx context.Context, f eeb.CharacteristicParams, c Constraints) (Choice, error) {
	cands, err := s.Candidates(ctx, f, c)
	if err != nil {
		return Choice{}, err
	}
	if len(cands) == 0 {
		return Choice{}, ErrNoFeasible
	}
	affordable := cands
	if c.MaxCost > 0 {
		affordable = make([]Choice, 0, len(cands))
		cheapest := math.Inf(1)
		for _, ch := range cands {
			if ch.PredictedBilledUSD < cheapest {
				cheapest = ch.PredictedBilledUSD
			}
			if ch.PredictedBilledUSD <= c.MaxCost {
				affordable = append(affordable, ch)
			}
		}
		if len(affordable) == 0 {
			return Choice{}, &OverBudgetError{CheapestUSD: cheapest, MaxCostUSD: c.MaxCost}
		}
	}
	s.rngMu.Lock()
	explore := s.rng.Float64() < c.Epsilon
	pick := 0
	if explore {
		pick = s.rng.Intn(len(affordable))
	}
	s.rngMu.Unlock()
	if explore {
		ch := affordable[pick]
		ch.Explored = true
		return ch, nil
	}
	return Frontier(affordable)[0], nil
}

// SelectFastest returns the feasibility-unconstrained minimum-time
// configuration — the fallback when no candidate meets Tmax and the
// baseline for the paper's final comparison against the "higher-end VM".
func (s *Selector) SelectFastest(ctx context.Context, f eeb.CharacteristicParams, maxNodes int) (Choice, error) {
	cands, err := s.Candidates(ctx, f, Constraints{
		TmaxSeconds: 1e18, MaxNodes: maxNodes, Epsilon: 0,
	})
	if err != nil {
		return Choice{}, err
	}
	if len(cands) == 0 {
		return Choice{}, ErrNoFeasible
	}
	best := cands[0]
	for _, ch := range cands[1:] {
		if ch.PredictedSeconds < best.PredictedSeconds {
			best = ch
		}
	}
	return best, nil
}
