package provision

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"disarcloud/internal/cloud"
	"disarcloud/internal/finmath"
)

func allTierConstraints(tmax float64) Constraints {
	return Constraints{
		TmaxSeconds: tmax, MaxNodes: 8, Epsilon: 0,
		Tiers: cloud.AllTiers(),
	}
}

func TestConstraintsValidateCostFields(t *testing.T) {
	good := allTierConstraints(600)
	good.MaxCost = 12.5
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.MaxCost = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative MaxCost accepted")
	}
	bad = good
	bad.MaxCost = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Fatal("infinite MaxCost accepted")
	}
	bad = good
	bad.Tiers = []cloud.Tier{cloud.Tier(77)}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid tier accepted")
	}
	if tiers := (Constraints{}).EffectiveTiers(); len(tiers) != 1 || tiers[0] != cloud.TierOnDemand {
		t.Fatalf("default tiers = %v", tiers)
	}
}

func TestCandidatesEnumerateTiers(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(1))
	cands, err := s.Candidates(context.Background(), params(), allTierConstraints(600))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[cloud.Tier]int{}
	for _, ch := range cands {
		seen[ch.Tier]++
		if ch.PredictedBilledUSD <= 0 {
			t.Fatalf("candidate without billed estimate: %v", ch)
		}
	}
	for _, tier := range cloud.AllTiers() {
		if seen[tier] == 0 {
			t.Fatalf("no %v candidates: %v", tier, seen)
		}
	}
	// Spot candidates carry the revocation inflation: for the same (type,
	// nodes) the spot duration is strictly longer and the cost lower than
	// the on-demand twin.
	byKey := map[string]Choice{}
	for _, ch := range cands {
		if len(ch.Slots) == 1 && ch.Tier == cloud.TierOnDemand {
			byKey[ch.Primary().Type.Name+string(rune(ch.Primary().Nodes))] = ch
		}
	}
	comparedSome := false
	for _, ch := range cands {
		if ch.Tier != cloud.TierSpot {
			continue
		}
		od, ok := byKey[ch.Primary().Type.Name+string(rune(ch.Primary().Nodes))]
		if !ok {
			continue
		}
		comparedSome = true
		if !(ch.PredictedSeconds > od.PredictedSeconds) {
			t.Fatalf("spot not inflated: %v vs %v", ch, od)
		}
		if !(ch.PredictedCost < od.PredictedCost) {
			t.Fatalf("spot not cheaper: %v vs %v", ch, od)
		}
	}
	if !comparedSome {
		t.Fatal("no spot/on-demand twin pairs compared")
	}
}

// TestSelectBackCompatRNGSequence is the golden-safety invariant at the
// provision layer: with default tiers and no budget, the rebuilt Select
// must pick the same configurations from the same RNG stream as the
// pre-Pareto implementation (cheapest-first scan, Float64 then Intn).
func TestSelectBackCompatRNGSequence(t *testing.T) {
	c := Constraints{TmaxSeconds: 600, MaxNodes: 8, Epsilon: 0.3}
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(1234))
	ref := finmath.NewRNG(1234)
	refSel, _ := NewSelector(newOracle(), nil, finmath.NewRNG(999)) // candidates only
	cands, err := refSel.Candidates(context.Background(), params(), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got, err := s.Select(context.Background(), params(), c)
		if err != nil {
			t.Fatal(err)
		}
		// Legacy algorithm replayed by hand on the reference RNG.
		var want Choice
		if ref.Float64() < c.Epsilon {
			want = cands[ref.Intn(len(cands))]
			want.Explored = true
		} else {
			want = cands[0]
			for _, ch := range cands[1:] {
				if ch.PredictedCost < want.PredictedCost {
					want = ch
				}
			}
		}
		if got.String() != want.String() || got.Explored != want.Explored {
			t.Fatalf("iter %d: got %v (explored %v), want %v (explored %v)",
				i, got, got.Explored, want, want.Explored)
		}
	}
}

func TestFrontierShape(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(1))
	cands, err := s.Candidates(context.Background(), params(), allTierConstraints(2000))
	if err != nil {
		t.Fatal(err)
	}
	fr := Frontier(cands)
	if len(fr) == 0 || len(fr) > len(cands) {
		t.Fatalf("frontier size %d of %d", len(fr), len(cands))
	}
	for i := 1; i < len(fr); i++ {
		if !(fr[i].PredictedCost >= fr[i-1].PredictedCost) {
			t.Fatalf("frontier not cost-ordered at %d", i)
		}
		if !(fr[i].PredictedSeconds < fr[i-1].PredictedSeconds) {
			t.Fatalf("frontier point %d not faster than predecessor", i)
		}
	}
	// No candidate may dominate a frontier point.
	for _, p := range fr {
		for _, ch := range cands {
			if ch.PredictedCost < p.PredictedCost && ch.PredictedSeconds <= p.PredictedSeconds {
				t.Fatalf("frontier point %v dominated by %v", p, ch)
			}
		}
	}
	// The frontier's first point is the global cheapest (first occurrence).
	want := cands[0]
	for _, ch := range cands[1:] {
		if ch.PredictedCost < want.PredictedCost {
			want = ch
		}
	}
	if fr[0].String() != want.String() {
		t.Fatalf("frontier[0] = %v, want cheapest %v", fr[0], want)
	}
	if Frontier(nil) != nil {
		t.Fatal("empty frontier not nil")
	}
}

func TestSelectPrefersSpotWhenSlackAllows(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(1))
	// Generous deadline: the cheapest feasible point should be a spot
	// deploy (spot mean fraction is far below the reserved discount).
	loose, err := s.Select(context.Background(), params(), allTierConstraints(3000))
	if err != nil {
		t.Fatal(err)
	}
	if loose.Tier != cloud.TierSpot {
		t.Fatalf("loose deadline picked %v, want spot", loose)
	}
	od, err := s.Select(context.Background(), params(), Constraints{TmaxSeconds: 3000, MaxNodes: 8, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !(loose.PredictedCost < od.PredictedCost) {
		t.Fatalf("spot selection %v not cheaper than on-demand %v", loose, od)
	}
}

func TestSelectBudgetFilter(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(1))
	c := allTierConstraints(600)
	unconstrained, err := s.Select(context.Background(), params(), c)
	if err != nil {
		t.Fatal(err)
	}
	// A budget exactly at the cheapest reservation admits it.
	c.MaxCost = unconstrained.PredictedBilledUSD
	got, err := s.Select(context.Background(), params(), c)
	if err != nil {
		t.Fatal(err)
	}
	if got.PredictedBilledUSD > c.MaxCost {
		t.Fatalf("selected over budget: %v > %v", got.PredictedBilledUSD, c.MaxCost)
	}
	// A budget below every reservation is an OverBudgetError carrying the
	// cheapest feasible figure.
	c.MaxCost = unconstrained.PredictedBilledUSD / 2
	_, err = s.Select(context.Background(), params(), c)
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("want ErrOverBudget, got %v", err)
	}
	var obe *OverBudgetError
	if !errors.As(err, &obe) {
		t.Fatalf("want *OverBudgetError, got %T", err)
	}
	if obe.CheapestUSD != unconstrained.PredictedBilledUSD || obe.MaxCostUSD != c.MaxCost {
		t.Fatalf("error figures %v vs cheapest %v budget %v", obe, unconstrained.PredictedBilledUSD, c.MaxCost)
	}
	if !strings.Contains(obe.Error(), "$") {
		t.Fatalf("error message %q lacks dollars", obe.Error())
	}
}

func TestSelectExplorationRespectsBudget(t *testing.T) {
	s, _ := NewSelector(newOracle(), nil, finmath.NewRNG(77))
	c := allTierConstraints(2000)
	c.Epsilon = 1 // always explore
	cheapest, err := s.Select(context.Background(), params(), Constraints{
		TmaxSeconds: 2000, MaxNodes: 8, Epsilon: 0, Tiers: cloud.AllTiers(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.MaxCost = cheapest.PredictedBilledUSD * 1.5
	for i := 0; i < 300; i++ {
		ch, err := s.Select(context.Background(), params(), c)
		if err != nil {
			t.Fatal(err)
		}
		if !ch.Explored {
			t.Fatal("epsilon=1 did not explore")
		}
		if ch.PredictedBilledUSD > c.MaxCost {
			t.Fatalf("exploration escaped the budget: %v > %v", ch.PredictedBilledUSD, c.MaxCost)
		}
	}
}

func TestBilledEstimateFloorsAtOneHour(t *testing.T) {
	ps := cloud.DefaultPriceSchedule()
	it, _ := cloud.TypeByName("c3.4xlarge")
	ch := Choice{Slots: []Slot{{Type: it, Nodes: 2}}, Tier: cloud.TierOnDemand, PredictedSeconds: 10}
	got := BilledEstimate(ps, ch)
	if math.Abs(got-2*it.HourlyUSD) > 1e-9 {
		t.Fatalf("short-run estimate %v, want one billed hour per VM", got)
	}
	long := ch
	long.PredictedSeconds = 6000 // 1.25x + 600 = 8100 s -> 3 hours
	if got := BilledEstimate(ps, long); math.Abs(got-3*2*it.HourlyUSD) > 1e-9 {
		t.Fatalf("long-run estimate %v", got)
	}
}

// BenchmarkSelectorPareto is the CI smoke guard: one full Select at
// catalog × 64-node × 3-tier scale must stay comfortably sub-millisecond.
func BenchmarkSelectorPareto(b *testing.B) {
	s, err := NewSelector(newOracle(), nil, finmath.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	c := Constraints{
		TmaxSeconds: 1e9, MaxNodes: 64, Epsilon: 0,
		MaxCost: 1e9, Tiers: cloud.AllTiers(),
	}
	f := params()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Select(ctx, f, c); err != nil {
			b.Fatal(err)
		}
	}
}
