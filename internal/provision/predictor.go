// Package provision implements the ML-based deploy selection of Section III
// of the paper: a family of per-architecture prediction models p_x(m, n, f)
// built from the knowledge base, the ensemble averaging that damps
// individual-model errors, and Algorithm 1 — enumerate every candidate
// configuration, discard those whose predicted time exceeds Tmax, choose the
// cheapest, and with probability epsilon explore a random feasible one.
package provision

import (
	"errors"
	"fmt"
	"sync"

	"disarcloud/internal/eeb"
	"disarcloud/internal/kb"
	"disarcloud/internal/ml"
)

// ErrUntrained is returned when a prediction is requested for an
// architecture with no trained models (knowledge base too small) — the
// caller should fall back to the manual early-training mode the paper
// describes.
var ErrUntrained = errors.New("provision: no trained model for architecture")

// MinSamplesToTrain is the minimum number of knowledge-base samples an
// architecture needs before its model suite is trained.
const MinSamplesToTrain = 12

// Predictor estimates execution seconds of a workload on a deploy
// configuration.
type Predictor interface {
	// PredictSeconds returns the expected execution time of workload f on
	// nodes VMs of the named architecture. It returns ErrUntrained when the
	// architecture has no usable models yet.
	PredictSeconds(architecture string, nodes int, f eeb.CharacteristicParams) (float64, error)
}

// EnsemblePredictor is the paper's predictor: per architecture, the suite of
// six Weka-style learners trained on that architecture's slice of the
// knowledge base; predictions are the across-model average. Retrain after
// every recorded execution implements the self-optimizing loop.
type EnsemblePredictor struct {
	seed uint64

	mu     sync.RWMutex
	suites map[string][]ml.Model
}

// NewEnsemblePredictor returns an untrained predictor rooted at seed.
func NewEnsemblePredictor(seed uint64) *EnsemblePredictor {
	return &EnsemblePredictor{seed: seed, suites: make(map[string][]ml.Model)}
}

// Retrain rebuilds the model suites of every architecture that has at least
// MinSamplesToTrain samples in the knowledge base. Architectures below the
// threshold keep (or stay without) their previous models.
func (p *EnsemblePredictor) Retrain(k *kb.KB) error {
	for _, arch := range k.Architectures() {
		if err := p.RetrainArchitecture(k, arch); err != nil {
			return err
		}
	}
	return nil
}

// RetrainArchitecture rebuilds the suite of one architecture — the
// incremental step of the self-optimizing loop after a run on that
// architecture. Below the sample threshold it is a no-op.
func (p *EnsemblePredictor) RetrainArchitecture(k *kb.KB, arch string) error {
	ds := k.Dataset(arch)
	if ds.Len() < MinSamplesToTrain {
		return nil
	}
	suite := ml.NewSuite(p.seed)
	for _, m := range suite {
		if err := m.Train(ds); err != nil {
			return fmt.Errorf("provision: training %s on %s: %w", m.Name(), arch, err)
		}
	}
	p.mu.Lock()
	p.suites[arch] = suite
	p.mu.Unlock()
	return nil
}

// Drop discards the architecture's model suite, returning it to the
// untrained state. Used when knowledge-base samples are retracted (e.g. a
// panicked run) and the remainder falls below the training threshold — a
// stale suite trained on retracted data must not keep predicting.
func (p *EnsemblePredictor) Drop(architecture string) {
	p.mu.Lock()
	delete(p.suites, architecture)
	p.mu.Unlock()
}

// Trained reports whether the architecture has a usable model suite.
func (p *EnsemblePredictor) Trained(architecture string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.suites[architecture]) > 0
}

// PredictSeconds implements Predictor with the ensemble average.
func (p *EnsemblePredictor) PredictSeconds(architecture string, nodes int, f eeb.CharacteristicParams) (float64, error) {
	per, err := p.PredictPerModel(architecture, nodes, f)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range per {
		sum += v
	}
	return sum / float64(len(per)), nil
}

// PredictPerModel returns each learner's individual prediction, keyed by
// learner name — the quantities behind Table I and Figure 2.
func (p *EnsemblePredictor) PredictPerModel(architecture string, nodes int, f eeb.CharacteristicParams) (map[string]float64, error) {
	p.mu.RLock()
	suite := p.suites[architecture]
	p.mu.RUnlock()
	if len(suite) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUntrained, architecture)
	}
	features := kb.Sample{Nodes: nodes, Params: f}.Features()
	out := make(map[string]float64, len(suite))
	for _, m := range suite {
		pred := m.Predict(features)
		if pred < 1 {
			// Execution times are bounded away from zero; clip pathological
			// extrapolations.
			pred = 1
		}
		out[m.Name()] = pred
	}
	return out, nil
}

var _ Predictor = (*EnsemblePredictor)(nil)
