// Package forecast is the proactive half of the elastic control plane: a
// workload-forecasting subsystem that turns the service's recent telemetry
// into a feed-forward worker target.
//
// The reactive controller (internal/elastic) only ever sees queue pressure
// that has already happened, so every burst pays a scale-up lag. This
// package closes that gap the way the ML-centric resource-management
// literature prescribes: a Recorder accumulates per-interval telemetry
// samples (submissions, completions, queue depth, backlog ETA), a family of
// Forecaster models (EWMA, Holt double-exponential, Holt-Winters seasonal,
// and an autoregressive model trained with internal/ml's ridge regression
// on lagged windows) predicts the next interval's arrivals, a rolling-
// backtest Selector picks whichever model has the lowest sMAPE over recent
// history, and a Planner converts the forecast arrival rate times the
// predicted mean job runtime into a worker target with a headroom factor
// (Little's law). The owning service takes the maximum of the reactive
// decision and the proactive target — the hybrid policy.
//
// Everything here is pure computation: no goroutines, no clocks, no I/O.
// Given the same series every model fits, forecasts and backtests
// bit-identically, which the regression suite asserts.
package forecast

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sample is one control-loop interval's telemetry, as the service's control
// loop records it.
type Sample struct {
	// At is the end of the interval (the control-loop tick time).
	At time.Time
	// Submissions is the number of jobs accepted during the interval.
	Submissions int
	// Completions is the number of jobs that reached a terminal state during
	// the interval.
	Completions int
	// QueueDepth is the accepted-but-unstarted backlog at the tick.
	QueueDepth int
	// BacklogETASeconds is the predictor-estimated total runtime of the
	// queued jobs at the tick.
	BacklogETASeconds float64
}

// Recorder is a fixed-capacity ring of telemetry samples, oldest evicted
// first. It is safe for concurrent use: the control loop appends while
// status endpoints snapshot.
type Recorder struct {
	mu    sync.Mutex
	ring  []Sample
	head  int // index of the oldest sample
	count int
	total uint64 // samples ever recorded (survives eviction)
}

// NewRecorder returns a recorder holding the last capacity samples.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity < 2 {
		return nil, errors.New("forecast: recorder capacity must be at least 2")
	}
	return &Recorder{ring: make([]Sample, capacity)}, nil
}

// Add appends one sample, evicting the oldest at capacity.
func (r *Recorder) Add(s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count < len(r.ring) {
		r.ring[(r.head+r.count)%len(r.ring)] = s
		r.count++
	} else {
		r.ring[r.head] = s
		r.head = (r.head + 1) % len(r.ring)
	}
	r.total++
}

// Len returns the number of samples currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Total returns the number of samples ever recorded, including evicted ones.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Samples returns a copy of the held samples, oldest first.
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.ring[(r.head+i)%len(r.ring)]
	}
	return out
}

// Arrivals returns the submission counts as a float series, oldest first —
// the demand signal the forecasters are fitted on.
func (r *Recorder) Arrivals() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = float64(r.ring[(r.head+i)%len(r.ring)].Submissions)
	}
	return out
}

// Config parameterises the forecasting subsystem as the service consumes it.
// The zero value of every field selects the documented default.
type Config struct {
	// Window is the recorder capacity in control-loop intervals (default
	// DefaultWindow).
	Window int
	// MinSamples is how many samples must accumulate before the planner
	// produces targets (default DefaultMinSamples). Below it the hybrid
	// policy degenerates to the reactive controller alone.
	MinSamples int
	// Headroom is the multiplicative safety factor on the planner's
	// Little's-law target (default DefaultHeadroom). Must be >= 1.
	Headroom float64
	// Horizon is how many intervals ahead the planner forecasts; the
	// per-interval arrival forecast is the mean over the horizon (default
	// DefaultHorizon). Averaging a few steps damps the single-step noise
	// amplification of the autoregressive candidate — one spiky interval
	// must not slam the pool to its ceiling.
	Horizon int
	// SeasonPeriod is the seasonality hint, in intervals, for the
	// Holt-Winters candidate; 0 or 1 omits it from the candidate set
	// (seasonal fitting on non-seasonal load is pure noise).
	SeasonPeriod int
	// ARLags is the autoregressive candidate's window length (default
	// DefaultARLags).
	ARLags int
	// ReselectEvery is how many control ticks pass between full backtest
	// reselections; between them the incumbent model is simply refitted on
	// the fresh series (default DefaultReselectEvery).
	ReselectEvery int
	// BacktestWindow is how many of the most recent observations the
	// rolling backtest evaluates over (default DefaultBacktestWindow,
	// always capped at half the series so every origin has at least as much
	// training history as evaluation future). Smaller windows adapt the
	// model choice faster and let long-period seasonal candidates qualify
	// earlier; larger windows rank on more evidence.
	BacktestWindow int
	// BacktestStride subsamples the rolling-backtest origins to bound the
	// per-reselection cost (default DefaultBacktestStride; 1 = every origin).
	BacktestStride int
	// RuntimeAlpha is the EWMA weight of the mean-job-runtime tracker
	// (default DefaultRuntimeAlpha).
	RuntimeAlpha float64
}

// Defaults for Config's zero fields.
const (
	DefaultWindow         = 256
	DefaultMinSamples     = 8
	DefaultHeadroom       = 1.2
	DefaultHorizon        = 3
	DefaultARLags         = 8
	DefaultReselectEvery  = 16
	DefaultBacktestWindow = 48
	DefaultBacktestStride = 2
	DefaultRuntimeAlpha   = 0.2
)

// WithDefaults returns the config with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.Headroom == 0 {
		c.Headroom = DefaultHeadroom
	}
	if c.Horizon == 0 {
		c.Horizon = DefaultHorizon
	}
	if c.ARLags == 0 {
		c.ARLags = DefaultARLags
	}
	if c.ReselectEvery == 0 {
		c.ReselectEvery = DefaultReselectEvery
	}
	if c.BacktestWindow == 0 {
		c.BacktestWindow = DefaultBacktestWindow
	}
	if c.BacktestStride == 0 {
		c.BacktestStride = DefaultBacktestStride
	}
	if c.RuntimeAlpha == 0 {
		c.RuntimeAlpha = DefaultRuntimeAlpha
	}
	return c
}

// Validate reports whether the (defaulted) config is admissible.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.Window < 2 {
		return errors.New("forecast: Window must be at least 2")
	}
	if c.MinSamples < 2 || c.MinSamples > c.Window {
		return fmt.Errorf("forecast: MinSamples %d outside [2, Window=%d]", c.MinSamples, c.Window)
	}
	if c.Headroom < 1 {
		return fmt.Errorf("forecast: Headroom %g below 1", c.Headroom)
	}
	if c.Horizon < 1 {
		return errors.New("forecast: Horizon must be at least 1")
	}
	if c.SeasonPeriod < 0 {
		return errors.New("forecast: SeasonPeriod must be non-negative")
	}
	if c.SeasonPeriod > c.Window/2 {
		return fmt.Errorf("forecast: SeasonPeriod %d needs at least two full seasons inside Window %d", c.SeasonPeriod, c.Window)
	}
	if c.ARLags < 1 {
		return errors.New("forecast: ARLags must be at least 1")
	}
	if c.ReselectEvery < 1 {
		return errors.New("forecast: ReselectEvery must be at least 1")
	}
	if c.BacktestWindow < 2 {
		return errors.New("forecast: BacktestWindow must be at least 2")
	}
	if c.BacktestStride < 1 {
		return errors.New("forecast: BacktestStride must be at least 1")
	}
	if c.RuntimeAlpha <= 0 || c.RuntimeAlpha > 1 {
		return fmt.Errorf("forecast: RuntimeAlpha %g outside (0,1]", c.RuntimeAlpha)
	}
	return nil
}

// Candidates builds the model family the selector backtests, as the config
// prescribes: EWMA, Holt, the AR(lags) ridge model, and — when a season
// period is configured — Holt-Winters.
func (c Config) Candidates() []Forecaster {
	c = c.WithDefaults()
	models := []Forecaster{
		NewEWMA(0),
		NewHolt(0, 0),
		NewAutoregressive(c.ARLags),
	}
	if c.SeasonPeriod > 1 {
		models = append(models, NewHoltWinters(0, 0, 0, c.SeasonPeriod))
	}
	return models
}
