package forecast

import (
	"math"
	"testing"
	"time"

	"disarcloud/internal/finmath"
)

// constant builds a flat series.
func constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// allModels is the full candidate family with a seasonal period of 8.
func allModels() []Forecaster {
	return []Forecaster{
		NewEWMA(0),
		NewHolt(0, 0),
		NewHoltWinters(0, 0, 0, 8),
		NewAutoregressive(4),
	}
}

// TestConstantSeriesConstantForecast: every model fitted on a constant
// series must forecast that constant at every horizon.
func TestConstantSeriesConstantForecast(t *testing.T) {
	series := constant(64, 7.5)
	for _, m := range allModels() {
		if err := m.Fit(series); err != nil {
			t.Fatalf("%s: fit on constant series: %v", m.Name(), err)
		}
		for h, f := range m.Forecast(12) {
			if math.Abs(f-7.5) > 1e-6 {
				t.Errorf("%s: forecast[%d] = %v, want 7.5", m.Name(), h, f)
			}
		}
	}
}

// TestHoltRecoversLinearTrend: on an exactly linear series the Holt
// recursion reproduces the line, so the h-step forecast continues it.
func TestHoltRecoversLinearTrend(t *testing.T) {
	const a, b = 3.0, 0.75
	series := make([]float64, 80)
	for i := range series {
		series[i] = a + b*float64(i)
	}
	m := NewHolt(0, 0)
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	for h, f := range m.Forecast(10) {
		want := a + b*float64(len(series)+h)
		if math.Abs(f-want) > 1e-9 {
			t.Fatalf("Holt forecast[%d] = %v, want %v", h, f, want)
		}
	}
}

// TestHoltWintersRecoversSeasonality: a planted zero-mean seasonal pattern
// on a flat level is reproduced exactly, phase and all.
func TestHoltWintersRecoversSeasonality(t *testing.T) {
	pattern := []float64{4, -1, -3, 0, 2, -2} // zero mean, period 6
	const level = 10.0
	series := make([]float64, 6*8)
	for i := range series {
		series[i] = level + pattern[i%len(pattern)]
	}
	m := NewHoltWinters(0, 0, 0, len(pattern))
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	for h, f := range m.Forecast(2 * len(pattern)) {
		want := level + pattern[(len(series)+h)%len(pattern)]
		if math.Abs(f-want) > 1e-9 {
			t.Fatalf("Holt-Winters forecast[%d] = %v, want %v", h, f, want)
		}
	}
}

// TestHoltWintersNeedsTwoSeasons: the documented ErrSeriesTooShort contract.
func TestHoltWintersNeedsTwoSeasons(t *testing.T) {
	m := NewHoltWinters(0, 0, 0, 8)
	if err := m.Fit(constant(15, 1)); err == nil {
		t.Fatal("fit succeeded on 15 points with period 8; want ErrSeriesTooShort")
	}
	m2 := NewAutoregressive(8)
	if err := m2.Fit(constant(16, 1)); err == nil {
		t.Fatal("AR(8) fit succeeded on 16 points; want ErrSeriesTooShort")
	}
}

// seasonalNoisy builds the kind of series the selector sees in production:
// a diurnal-ish sinusoid with multiplicative noise, deterministic in seed.
func seasonalNoisy(n, period int, seed uint64) []float64 {
	rng := finmath.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		base := 10 + 6*math.Sin(2*math.Pi*float64(i)/float64(period))
		out[i] = base * (1 + 0.05*rng.NormFloat64())
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// TestSelectorDeterministic: the same series selects the same model with
// bit-identical sMAPE scores, run after run.
func TestSelectorDeterministic(t *testing.T) {
	cfg := Config{SeasonPeriod: 12}.WithDefaults()
	series := seasonalNoisy(120, 12, 2016)
	sel := NewSelector(cfg)
	first, err := sel.Select(series)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := NewSelector(cfg).Select(series)
		if err != nil {
			t.Fatal(err)
		}
		if again.Name != first.Name {
			t.Fatalf("run %d selected %s, first run selected %s", run, again.Name, first.Name)
		}
		if math.Float64bits(again.SMAPE) != math.Float64bits(first.SMAPE) {
			t.Fatalf("run %d sMAPE %x differs from first %x",
				run, math.Float64bits(again.SMAPE), math.Float64bits(first.SMAPE))
		}
		for i, sc := range again.Scores {
			if math.Float64bits(sc.SMAPE) != math.Float64bits(first.Scores[i].SMAPE) {
				t.Fatalf("run %d score[%d] (%s) not bit-identical", run, i, sc.Name)
			}
		}
	}
}

// TestSelectorNeverPicksWorse: the chosen model's sMAPE is the minimum over
// every evaluated candidate, across a spread of series shapes.
func TestSelectorNeverPicksWorse(t *testing.T) {
	cfg := Config{SeasonPeriod: 12}.WithDefaults()
	sel := NewSelector(cfg)
	shapes := map[string][]float64{
		"constant": constant(96, 5),
		"seasonal": seasonalNoisy(120, 12, 7),
		"trend": func() []float64 {
			s := make([]float64, 96)
			for i := range s {
				s[i] = 2 + 0.3*float64(i)
			}
			return s
		}(),
	}
	for name, series := range shapes {
		choice, err := sel.Select(series)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, sc := range choice.Scores {
			if sc.Skipped != "" {
				continue
			}
			if sc.SMAPE < choice.SMAPE {
				t.Errorf("%s: selected %s (sMAPE %.6f) but %s scored %.6f",
					name, choice.Name, choice.SMAPE, sc.Name, sc.SMAPE)
			}
		}
		if choice.Model == nil {
			t.Fatalf("%s: choice carries no fitted model", name)
		}
	}
}

// TestSelectorPrefersSeasonalModelOnSeasonalLoad: on a strongly seasonal
// series with enough history, a structure-aware model (Holt-Winters, or the
// AR whose lag window spans the pattern) must beat the flat EWMA baseline
// decisively — the selector is the reason the subsystem adapts to the trace
// shape.
func TestSelectorPrefersSeasonalModelOnSeasonalLoad(t *testing.T) {
	cfg := Config{SeasonPeriod: 12}.WithDefaults()
	series := seasonalNoisy(240, 12, 99)
	choice, err := NewSelector(cfg).Select(series)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Name != "HoltWinters" && choice.Name != "AR" {
		t.Fatalf("selected %s (sMAPE %.4f) on seasonal load; scores: %+v",
			choice.Name, choice.SMAPE, choice.Scores)
	}
	var ewma float64
	for _, sc := range choice.Scores {
		if sc.Name == "EWMA" {
			ewma = sc.SMAPE
		}
	}
	if choice.SMAPE > ewma/2 {
		t.Fatalf("winner %s sMAPE %.4f not decisively better than EWMA's %.4f",
			choice.Name, choice.SMAPE, ewma)
	}
}

// TestSelectorTooShort: a series below the backtest minimum is a clean
// ErrNoCandidate, not a panic or a bogus choice.
func TestSelectorTooShort(t *testing.T) {
	if _, err := NewSelector(Config{}.WithDefaults()).Select([]float64{1, 2}); err == nil {
		t.Fatal("want ErrNoCandidate on a 2-point series")
	}
}

// TestRecorderRing: capacity eviction keeps the newest samples in order.
func TestRecorderRing(t *testing.T) {
	r, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	for i := 0; i < 7; i++ {
		r.Add(Sample{At: base.Add(time.Duration(i) * time.Second), Submissions: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 7 {
		t.Fatalf("Total = %d, want 7", r.Total())
	}
	arr := r.Arrivals()
	want := []float64{3, 4, 5, 6}
	for i, v := range arr {
		if v != want[i] {
			t.Fatalf("Arrivals = %v, want %v", arr, want)
		}
	}
	samples := r.Samples()
	for i := 1; i < len(samples); i++ {
		if !samples[i].At.After(samples[i-1].At) {
			t.Fatal("Samples not in chronological order")
		}
	}
	if _, err := NewRecorder(1); err == nil {
		t.Fatal("NewRecorder(1) should fail")
	}
}

// TestPlannerTarget: Little's law with headroom, and the no-opinion guards.
func TestPlannerTarget(t *testing.T) {
	p := NewPlanner(1.2)
	// 10 jobs/s x 0.5 s/job x 1.2 = 6 workers.
	if got := p.Target(10, 0.5); got != 6 {
		t.Fatalf("Target(10, 0.5) = %d, want 6", got)
	}
	// Fractional products round up.
	if got := p.Target(3, 0.5); got != 2 { // 1.8 -> 2
		t.Fatalf("Target(3, 0.5) = %d, want 2", got)
	}
	for _, tc := range [][2]float64{
		{0, 1}, {-4, 1}, {1, 0}, {1, -2},
		{math.NaN(), 1}, {1, math.NaN()}, {math.Inf(1), 1}, {1, math.Inf(1)},
	} {
		if got := p.Target(tc[0], tc[1]); got != 0 {
			t.Fatalf("Target(%v, %v) = %d, want 0 (no opinion)", tc[0], tc[1], got)
		}
	}
	if NewPlanner(0.3).Headroom != DefaultHeadroom {
		t.Fatal("sub-1 headroom should fall back to the default")
	}
}

// TestSMAPE: the metric's fixed points and guards.
func TestSMAPE(t *testing.T) {
	if s := SMAPE([]float64{1, 2}, []float64{1, 2}); s != 0 {
		t.Fatalf("perfect forecast sMAPE = %v, want 0", s)
	}
	if s := SMAPE([]float64{0}, []float64{0}); s != 0 {
		t.Fatalf("0/0 sMAPE = %v, want 0", s)
	}
	if s := SMAPE([]float64{0, 0}, []float64{1, 1}); math.Abs(s-2) > 1e-12 {
		t.Fatalf("maximally wrong sMAPE = %v, want 2", s)
	}
	if s := SMAPE([]float64{1}, []float64{1, 2}); !math.IsNaN(s) {
		t.Fatalf("length mismatch sMAPE = %v, want NaN", s)
	}
}

// TestConfigValidate: the defaulted config is admissible and the documented
// rejections fire.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config (defaulted): %v", err)
	}
	bad := []Config{
		{MinSamples: 1},
		{Headroom: 0.5},
		{SeasonPeriod: -1},
		{Window: 32, SeasonPeriod: 20},
		{ReselectEvery: -1},
		{BacktestWindow: 1},
		{RuntimeAlpha: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, cfg)
		}
	}
	// Candidate family: HW present only with a season period.
	if n := len((Config{}).Candidates()); n != 3 {
		t.Fatalf("aseasonal candidate family has %d models, want 3", n)
	}
	if n := len((Config{SeasonPeriod: 12}).Candidates()); n != 4 {
		t.Fatalf("seasonal candidate family has %d models, want 4", n)
	}
}
