package forecast

import (
	"math"
	"testing"
)

// TestSMAPEGuardTable pins the degenerate-input behaviour of the selector's
// ranking metric, which the forecast status endpoint surfaces per model:
// zero-demand stretches must not divide by zero, and unusable inputs must
// come back NaN (the selector maps NaN to +Inf, never ranking them best).
func TestSMAPEGuardTable(t *testing.T) {
	cases := []struct {
		name      string
		forecasts []float64
		actuals   []float64
		want      float64 // NaN means "expect NaN"
	}{
		{name: "empty history", want: math.NaN()},
		{name: "length mismatch", forecasts: []float64{1, 2}, actuals: []float64{1}, want: math.NaN()},
		{name: "all-zero demand, all-zero forecast", forecasts: []float64{0, 0, 0}, actuals: []float64{0, 0, 0}, want: 0},
		{name: "zero demand, nonzero forecast", forecasts: []float64{2}, actuals: []float64{0}, want: 2},
		{name: "perfect forecast", forecasts: []float64{3, 5}, actuals: []float64{3, 5}, want: 0},
		// The skipped 0/0 term still counts toward the mean as an exact
		// hit, so one real miss (smape 2/3) averages down to 1/3.
		{name: "zeros diluting real misses", forecasts: []float64{0, 4}, actuals: []float64{0, 2}, want: 1.0 / 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SMAPE(tc.forecasts, tc.actuals)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("SMAPE = %v, want NaN", got)
				}
				return
			}
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("SMAPE = %v, want finite", got)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("SMAPE = %v, want %v", got, tc.want)
			}
			if got < 0 || got > 2 {
				t.Fatalf("SMAPE = %v outside [0,2]", got)
			}
		})
	}
}
