package forecast

import (
	"errors"
	"fmt"
	"math"

	"disarcloud/internal/ml"
)

// ErrSeriesTooShort is returned by Fit when the series cannot support the
// model (e.g. Holt-Winters before two full seasons of history).
var ErrSeriesTooShort = errors.New("forecast: series too short for this model")

// Forecaster is a univariate time-series model over the demand signal. Fit
// trains on the whole series (oldest first) and must be called before
// Forecast; Forecast extrapolates h steps past the end of the fitted
// series. Implementations are deterministic: the same series produces
// bit-identical fits and forecasts.
type Forecaster interface {
	// Name identifies the model ("EWMA", "Holt", "HoltWinters", "AR").
	Name() string
	Fit(series []float64) error
	Forecast(h int) []float64
}

// Default smoothing parameters. The selector, not the smoothing constants,
// carries the adaptivity: it swaps the whole model out when another family
// tracks the load better.
const (
	DefaultEWMAAlpha = 0.35
	DefaultHoltAlpha = 0.5
	DefaultHoltBeta  = 0.3
	DefaultHWAlpha   = 0.25
	DefaultHWBeta    = 0.05
	DefaultHWGamma   = 0.15
)

// EWMA is the exponentially-weighted moving average: a single smoothed
// level, flat forecast. The baseline every other candidate has to beat.
type EWMA struct {
	Alpha float64
	level float64
	fit   bool
}

// NewEWMA returns an EWMA model; alpha <= 0 selects DefaultEWMAAlpha.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = DefaultEWMAAlpha
	}
	return &EWMA{Alpha: alpha}
}

// Name implements Forecaster.
func (m *EWMA) Name() string { return "EWMA" }

// Fit implements Forecaster.
func (m *EWMA) Fit(series []float64) error {
	if len(series) < 1 {
		return fmt.Errorf("%w: EWMA needs 1 point, have %d", ErrSeriesTooShort, len(series))
	}
	m.level = series[0]
	for _, x := range series[1:] {
		m.level = m.Alpha*x + (1-m.Alpha)*m.level
	}
	m.fit = true
	return nil
}

// Forecast implements Forecaster.
func (m *EWMA) Forecast(h int) []float64 {
	out := make([]float64, h)
	if !m.fit {
		return out
	}
	for i := range out {
		out[i] = m.level
	}
	return out
}

// Holt is double-exponential smoothing: a level plus a linear trend, so a
// steadily ramping load is extrapolated instead of chased. On an exactly
// linear series the recursion reproduces the line bit-for-bit (the property
// suite asserts it).
type Holt struct {
	Alpha, Beta  float64
	level, trend float64
	fit          bool
}

// NewHolt returns a Holt model; non-positive parameters select the defaults.
func NewHolt(alpha, beta float64) *Holt {
	if alpha <= 0 {
		alpha = DefaultHoltAlpha
	}
	if beta <= 0 {
		beta = DefaultHoltBeta
	}
	return &Holt{Alpha: alpha, Beta: beta}
}

// Name implements Forecaster.
func (m *Holt) Name() string { return "Holt" }

// Fit implements Forecaster.
func (m *Holt) Fit(series []float64) error {
	if len(series) < 2 {
		return fmt.Errorf("%w: Holt needs 2 points, have %d", ErrSeriesTooShort, len(series))
	}
	m.level = series[0]
	m.trend = series[1] - series[0]
	for _, x := range series[1:] {
		prev := m.level
		m.level = m.Alpha*x + (1-m.Alpha)*(m.level+m.trend)
		m.trend = m.Beta*(m.level-prev) + (1-m.Beta)*m.trend
	}
	m.fit = true
	return nil
}

// Forecast implements Forecaster.
func (m *Holt) Forecast(h int) []float64 {
	out := make([]float64, h)
	if !m.fit {
		return out
	}
	for i := range out {
		out[i] = m.level + float64(i+1)*m.trend
	}
	return out
}

// HoltWinters is triple-exponential smoothing with additive seasonality of
// the configured period — the diurnal-load specialist. It needs two full
// seasons of history to initialise.
type HoltWinters struct {
	Alpha, Beta, Gamma float64
	Period             int

	level, trend float64
	seasonal     []float64 // rolling, indexed by t mod Period
	steps        int       // observations consumed, for seasonal phase
	fit          bool
}

// NewHoltWinters returns a Holt-Winters model over the given period;
// non-positive smoothing parameters select the defaults.
func NewHoltWinters(alpha, beta, gamma float64, period int) *HoltWinters {
	if alpha <= 0 {
		alpha = DefaultHWAlpha
	}
	if beta <= 0 {
		beta = DefaultHWBeta
	}
	if gamma <= 0 {
		gamma = DefaultHWGamma
	}
	return &HoltWinters{Alpha: alpha, Beta: beta, Gamma: gamma, Period: period}
}

// Name implements Forecaster.
func (m *HoltWinters) Name() string { return "HoltWinters" }

// Fit implements Forecaster.
func (m *HoltWinters) Fit(series []float64) error {
	p := m.Period
	if p < 2 {
		return fmt.Errorf("forecast: Holt-Winters period %d must be at least 2", p)
	}
	if len(series) < 2*p {
		return fmt.Errorf("%w: Holt-Winters(period %d) needs %d points, have %d",
			ErrSeriesTooShort, p, 2*p, len(series))
	}
	// Classical initialisation: level = mean of the first season, trend =
	// per-step drift between the first two season means, seasonal indices =
	// first-season deviations from the level.
	var mean1, mean2 float64
	for i := 0; i < p; i++ {
		mean1 += series[i]
		mean2 += series[p+i]
	}
	mean1 /= float64(p)
	mean2 /= float64(p)
	m.level = mean1
	m.trend = (mean2 - mean1) / float64(p)
	m.seasonal = make([]float64, p)
	for i := 0; i < p; i++ {
		m.seasonal[i] = series[i] - mean1
	}
	m.steps = p
	for _, x := range series[p:] {
		idx := m.steps % p
		prevLevel := m.level
		m.level = m.Alpha*(x-m.seasonal[idx]) + (1-m.Alpha)*(m.level+m.trend)
		m.trend = m.Beta*(m.level-prevLevel) + (1-m.Beta)*m.trend
		m.seasonal[idx] = m.Gamma*(x-m.level) + (1-m.Gamma)*m.seasonal[idx]
		m.steps++
	}
	m.fit = true
	return nil
}

// Forecast implements Forecaster.
func (m *HoltWinters) Forecast(h int) []float64 {
	out := make([]float64, h)
	if !m.fit {
		return out
	}
	for i := range out {
		idx := (m.steps + i) % m.Period
		out[i] = m.level + float64(i+1)*m.trend + m.seasonal[idx]
	}
	return out
}

// Autoregressive predicts the next value as a learned linear function of
// the last Lags observations, trained with internal/ml's ridge-stabilised
// linear regression on every lagged window of the series — the ML-suite
// member of the candidate family. Multi-step forecasts feed predictions
// back as lags.
type Autoregressive struct {
	Lags int

	model *ml.LinearRegression
	tail  []float64 // last Lags observations of the fitted series
}

// NewAutoregressive returns an AR model over the given lag window; lags < 1
// selects DefaultARLags.
func NewAutoregressive(lags int) *Autoregressive {
	if lags < 1 {
		lags = DefaultARLags
	}
	return &Autoregressive{Lags: lags}
}

// Name implements Forecaster.
func (m *Autoregressive) Name() string { return "AR" }

// Fit implements Forecaster.
func (m *Autoregressive) Fit(series []float64) error {
	p := m.Lags
	// The ridge solve needs at least dim+1 = p+1 rows, and each row consumes
	// p leading observations.
	if len(series) < 2*p+1 {
		return fmt.Errorf("%w: AR(%d) needs %d points, have %d",
			ErrSeriesTooShort, p, 2*p+1, len(series))
	}
	names := make([]string, p)
	for i := range names {
		names[i] = fmt.Sprintf("lag%d", p-i)
	}
	d := ml.NewDataset(names)
	for t := p; t < len(series); t++ {
		if err := d.Add(series[t-p:t], series[t]); err != nil {
			return err
		}
	}
	lr := ml.NewLinearRegression()
	if err := lr.Train(d); err != nil {
		return fmt.Errorf("forecast: AR fit: %w", err)
	}
	m.model = lr
	m.tail = append(m.tail[:0], series[len(series)-p:]...)
	return nil
}

// Forecast implements Forecaster.
func (m *Autoregressive) Forecast(h int) []float64 {
	out := make([]float64, h)
	if m.model == nil {
		return out
	}
	window := append([]float64(nil), m.tail...)
	for i := range out {
		next := m.model.Predict(window)
		out[i] = next
		window = append(window[1:], next)
	}
	return out
}

// SMAPE is the symmetric mean absolute percentage error of forecasts
// against actuals, in [0, 2]: mean of 2|F-A| / (|A|+|F|), with an exact
// 0/0 scored as a perfect 0. It is the selector's ranking metric — scale-
// free, so quiet and busy stretches of history weigh equally.
func SMAPE(forecasts, actuals []float64) float64 {
	if len(forecasts) != len(actuals) || len(forecasts) == 0 {
		return math.NaN()
	}
	var sum float64
	for i, f := range forecasts {
		a := actuals[i]
		denom := math.Abs(f) + math.Abs(a)
		if denom == 0 {
			continue // exact hit on zero demand
		}
		sum += 2 * math.Abs(f-a) / denom
	}
	return sum / float64(len(forecasts))
}
