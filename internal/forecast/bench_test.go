package forecast

import "testing"

// The forecast path runs inside the service's control loop, so its cost per
// tick matters: BenchmarkForecastSelect is the expensive reselection path
// (rolling backtest over the full candidate family), BenchmarkForecastRefit
// the cheap between-reselection path (refit the incumbent only). Both run
// in the CI bench-smoke step at 1x to stay compiling and runnable.

func benchSeries() []float64 {
	return seasonalNoisy(DefaultWindow, 24, 42)
}

func BenchmarkForecastSelect(b *testing.B) {
	cfg := Config{SeasonPeriod: 24}.WithDefaults()
	series := benchSeries()
	sel := NewSelector(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(series); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForecastRefit(b *testing.B) {
	series := benchSeries()
	models := map[string]Forecaster{
		"EWMA":        NewEWMA(0),
		"Holt":        NewHolt(0, 0),
		"HoltWinters": NewHoltWinters(0, 0, 0, 24),
		"AR":          NewAutoregressive(DefaultARLags),
	}
	for name, m := range models {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := m.Fit(series); err != nil {
					b.Fatal(err)
				}
				_ = m.Forecast(1)
			}
		})
	}
}
