package forecast

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoCandidate is returned by Select when no candidate model can be
// backtested on the series (history still too short for every family).
var ErrNoCandidate = errors.New("forecast: no candidate model fits the series")

// Score is one candidate's rolling-backtest result.
type Score struct {
	Name string
	// SMAPE is the rolling one-step-ahead sMAPE over the evaluation window;
	// +Inf when the model was skipped.
	SMAPE float64
	// Origins is how many backtest origins the model was evaluated on.
	Origins int
	// Skipped explains why the model was excluded ("" when evaluated).
	Skipped string
}

// Choice is the selector's outcome: the winning model, already fitted on
// the full series, plus the full scoreboard for telemetry.
type Choice struct {
	Model  Forecaster
	Name   string
	SMAPE  float64
	Scores []Score
}

// Selector picks the forecaster with the lowest rolling-backtest sMAPE over
// recent history. Given the same series and candidate constructors it is
// bit-deterministic: every candidate is refitted from scratch at every
// origin, ties break by candidate order, and nothing consults a clock or an
// RNG.
type Selector struct {
	// NewCandidates builds a fresh candidate set; models are stateful, so
	// the selector constructs throwaway instances per backtest origin.
	NewCandidates func() []Forecaster
	// Window is how many of the most recent observations are used as
	// backtest origins; it is capped at half the series so every origin
	// trains on at least as much history as the evaluation spans.
	Window int
	// Stride subsamples backtest origins (1 = every origin).
	Stride int
}

// NewSelector builds a selector over the config's candidate family.
func NewSelector(cfg Config) *Selector {
	cfg = cfg.WithDefaults()
	return &Selector{
		NewCandidates: cfg.Candidates,
		Window:        cfg.BacktestWindow,
		Stride:        cfg.BacktestStride,
	}
}

// Select backtests every candidate over the most recent Window
// observations (one-step-ahead, refitting at each origin) and returns the
// lowest-sMAPE model fitted on the full series. A candidate that cannot
// fit at every origin of the evaluation window — typically Holt-Winters
// before two full seasons of pre-window history — is skipped for this
// round rather than scored on a partial window, so every score compares
// like with like; evaluating only recent history is what lets a
// long-period seasonal candidate enter the running as soon as its
// initialisation requirement clears the window's left edge.
func (s *Selector) Select(series []float64) (Choice, error) {
	n := len(series)
	if n < 4 {
		return Choice{}, fmt.Errorf("%w: %d observations", ErrNoCandidate, n)
	}
	stride := s.Stride
	if stride < 1 {
		stride = 1
	}
	window := s.Window
	if window < 1 || window > n/2 {
		window = n / 2
	}
	start := n - window
	if start < 2 {
		start = 2
	}

	candidates := s.NewCandidates()
	scores := make([]Score, len(candidates))
	forecasts := make([][]float64, len(candidates))
	for ci, proto := range candidates {
		scores[ci] = Score{Name: proto.Name(), SMAPE: math.Inf(1)}
	}
	// Origins outer, candidates inner: one fresh family per origin (models
	// are stateful, so each origin needs unfitted instances) instead of one
	// per (candidate, origin) pair. The actuals are shared: a candidate is
	// either skipped before scoring or evaluated at every origin, so every
	// scored candidate lines up against the same actuals.
	var actuals []float64
	for t := start; t < n; t += stride {
		actuals = append(actuals, series[t])
		family := s.NewCandidates()
		for ci, m := range family {
			if scores[ci].Skipped != "" {
				continue
			}
			if err := m.Fit(series[:t]); err != nil {
				scores[ci].Skipped = err.Error()
				continue
			}
			forecasts[ci] = append(forecasts[ci], m.Forecast(1)[0])
		}
	}
	best := -1
	for ci := range scores {
		if scores[ci].Skipped == "" && len(forecasts[ci]) > 0 {
			scores[ci].SMAPE = SMAPE(forecasts[ci], actuals)
			scores[ci].Origins = len(forecasts[ci])
			if math.IsNaN(scores[ci].SMAPE) {
				scores[ci].SMAPE = math.Inf(1)
				scores[ci].Skipped = "degenerate backtest"
			}
		}
		if scores[ci].Skipped == "" && (best < 0 || scores[ci].SMAPE < scores[best].SMAPE) {
			best = ci
		}
	}
	if best < 0 {
		return Choice{Scores: scores}, ErrNoCandidate
	}

	winner := s.NewCandidates()[best]
	if err := winner.Fit(series); err != nil {
		// Cannot happen for a model that fitted every backtest prefix, but
		// fail loudly rather than hand back an unfitted forecaster.
		return Choice{Scores: scores}, err
	}
	return Choice{
		Model:  winner,
		Name:   scores[best].Name,
		SMAPE:  scores[best].SMAPE,
		Scores: scores,
	}, nil
}
