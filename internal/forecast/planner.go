package forecast

import "math"

// Planner converts a demand forecast into a feed-forward worker target.
//
// The conversion is Little's law: a stream of lambda jobs per second, each
// occupying a worker for S seconds, keeps lambda*S workers busy in steady
// state; the headroom factor buys slack for forecast error and
// within-interval burstiness. The planner is pure arithmetic — the owning
// service supplies the forecast arrival rate and the predicted mean job
// runtime (KB-ensemble-estimated), and clamps the result to the elastic
// pool bounds.
type Planner struct {
	// Headroom multiplies the Little's-law target; must be >= 1.
	Headroom float64
}

// NewPlanner returns a planner; headroom below 1 selects DefaultHeadroom.
func NewPlanner(headroom float64) Planner {
	if headroom < 1 || math.IsNaN(headroom) || math.IsInf(headroom, 0) {
		headroom = DefaultHeadroom
	}
	return Planner{Headroom: headroom}
}

// Target returns the workers needed to absorb arrivalsPerSec jobs per
// second at meanRuntimeSeconds of worker occupancy each, with headroom,
// rounded to the nearest worker — the headroom factor is the slack knob;
// always rounding up would stack a second, hidden headroom of up to one
// whole worker on top of it, which at small pool sizes dominates the bill.
// Non-positive or non-finite inputs — no forecast yet, an untrained
// runtime estimator, a degenerate extrapolation — yield 0, meaning "no
// opinion": the hybrid policy then defers entirely to the reactive
// controller.
func (p Planner) Target(arrivalsPerSec, meanRuntimeSeconds float64) int {
	if !(arrivalsPerSec > 0) || !(meanRuntimeSeconds > 0) ||
		math.IsInf(arrivalsPerSec, 0) || math.IsInf(meanRuntimeSeconds, 0) {
		return 0
	}
	w := arrivalsPerSec * meanRuntimeSeconds * p.Headroom
	if math.IsInf(w, 0) || w > 1e9 {
		// A degenerate product is an estimator bug, not a provisioning
		// signal; refuse the opinion rather than slam the pool to MaxWorkers.
		return 0
	}
	return int(math.Round(w))
}
