package fund

import (
	"math"
	"testing"

	"disarcloud/internal/finmath"
	"disarcloud/internal/stochastic"
)

func testMarket() stochastic.Config {
	return stochastic.Config{
		Horizon:      30,
		StepsPerYear: 1,
		Rate: stochastic.VasicekParams{
			R0: 0.02, Speed: 0.3, MeanP: 0.03, MeanQ: 0.025, Sigma: 0.01,
		},
		Equities: []stochastic.GBMParams{
			{S0: 100, Mu: 0.06, Sigma: 0.18},
			{S0: 200, Mu: 0.05, Sigma: 0.15},
		},
		Credit: stochastic.CIRParams{L0: 0.01, Speed: 0.5, Mean: 0.015, Sigma: 0.04},
	}
}

func simpleConfig() Config {
	return Config{
		Name: "test",
		Assets: []Asset{
			{Kind: GovernmentBond, Weight: 0.5, Maturity: 5},
			{Kind: CorporateBond, Weight: 0.3, Maturity: 7, LossGivenDefault: 0.6},
			{Kind: Equity, Weight: 0.2, EquityIndex: 0},
		},
		TargetReturn:      0.02,
		SmoothingFraction: 0.5,
		MaxBuffer:         0.08,
	}
}

func TestConfigValidate(t *testing.T) {
	market := testMarket()
	if err := simpleConfig().Validate(market); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no assets", func(c *Config) { c.Assets = nil }},
		{"weights != 1", func(c *Config) { c.Assets[0].Weight = 0.9 }},
		{"negative weight", func(c *Config) { c.Assets[0].Weight = -0.5; c.Assets[1].Weight = 1.3 }},
		{"bond no maturity", func(c *Config) { c.Assets[0].Maturity = 0 }},
		{"bad equity index", func(c *Config) { c.Assets[2].EquityIndex = 5 }},
		{"bad LGD", func(c *Config) { c.Assets[1].LossGivenDefault = 1.5 }},
		{"bad smoothing", func(c *Config) { c.SmoothingFraction = 1.5 }},
		{"negative buffer", func(c *Config) { c.MaxBuffer = -0.1 }},
		{"unknown kind", func(c *Config) { c.Assets[0].Kind = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := simpleConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(market); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestReturnsLengthAndDeterminism(t *testing.T) {
	market := testMarket()
	f, err := New(simpleConfig(), market)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := stochastic.NewGenerator(market)
	s1 := g.Generate(finmath.NewRNG(42), stochastic.RealWorld)
	s2 := g.Generate(finmath.NewRNG(42), stochastic.RealWorld)
	r1 := f.Returns(s1, 20)
	r2 := f.Returns(s2, 20)
	if len(r1) != 20 {
		t.Fatalf("len = %d", len(r1))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("returns not deterministic")
		}
	}
}

func TestSmoothingReducesVolatility(t *testing.T) {
	market := testMarket()
	smooth := simpleConfig()
	raw := simpleConfig()
	raw.SmoothingFraction = 0
	fs, _ := New(smooth, market)
	fr, _ := New(raw, market)
	g, _ := stochastic.NewGenerator(market)
	rng := finmath.NewRNG(31)
	var volSmooth, volRaw float64
	n := 200
	for i := 0; i < n; i++ {
		s := g.Generate(rng, stochastic.RealWorld)
		volSmooth += finmath.StdDev(fs.Returns(s, 25))
		volRaw += finmath.StdDev(fr.Returns(s, 25))
	}
	if volSmooth >= volRaw {
		t.Fatalf("smoothing did not reduce volatility: %v >= %v", volSmooth/float64(n), volRaw/float64(n))
	}
}

func TestSmoothingPreservesLongRunMean(t *testing.T) {
	// The buffer defers gains but does not create or destroy them beyond the
	// cap, so long-run mean book return should be close to mean market
	// return.
	market := testMarket()
	f, _ := New(simpleConfig(), market)
	g, _ := stochastic.NewGenerator(market)
	rng := finmath.NewRNG(17)
	var meanBook, meanMkt float64
	n := 300
	for i := 0; i < n; i++ {
		s := g.Generate(rng, stochastic.RealWorld)
		meanBook += finmath.Mean(f.Returns(s, 30))
		meanMkt += finmath.Mean(f.MarketReturns(s, 30))
	}
	meanBook /= float64(n)
	meanMkt /= float64(n)
	if math.Abs(meanBook-meanMkt) > 0.005 {
		t.Fatalf("book mean %v drifted from market mean %v", meanBook, meanMkt)
	}
}

func TestNoSmoothingIdentity(t *testing.T) {
	market := testMarket()
	cfg := simpleConfig()
	cfg.SmoothingFraction = 0
	f, _ := New(cfg, market)
	g, _ := stochastic.NewGenerator(market)
	s := g.Generate(finmath.NewRNG(3), stochastic.RealWorld)
	book := f.Returns(s, 15)
	mkt := f.MarketReturns(s, 15)
	for i := range book {
		if book[i] != mkt[i] {
			t.Fatal("zero smoothing should leave returns untouched")
		}
	}
}

func TestBufferCapRespected(t *testing.T) {
	// With a zero cap, smoothing can never stash anything, so book == market.
	market := testMarket()
	cfg := simpleConfig()
	cfg.MaxBuffer = 0
	f, _ := New(cfg, market)
	g, _ := stochastic.NewGenerator(market)
	s := g.Generate(finmath.NewRNG(13), stochastic.RealWorld)
	book := f.Returns(s, 20)
	mkt := f.MarketReturns(s, 20)
	for i := range book {
		if math.Abs(book[i]-mkt[i]) > 1e-12 {
			t.Fatal("zero-cap buffer still altered returns")
		}
	}
}

func TestTypicalItalianFundValid(t *testing.T) {
	market := testMarket()
	for _, n := range []int{3, 5, 8, 12, 20} {
		cfg := TypicalItalianFund(n, market)
		if err := cfg.Validate(market); err != nil {
			t.Fatalf("TypicalItalianFund(%d): %v", n, err)
		}
		if cfg.NumAssets() != n {
			t.Fatalf("TypicalItalianFund(%d) has %d assets", n, cfg.NumAssets())
		}
	}
	// Degenerate request clamps to 3.
	if got := TypicalItalianFund(1, market).NumAssets(); got != 3 {
		t.Fatalf("clamp failed: %d assets", got)
	}
}

func TestAssetKindString(t *testing.T) {
	if GovernmentBond.String() != "govt-bond" || Equity.String() != "equity" ||
		CorporateBond.String() != "corp-bond" {
		t.Fatal("AssetKind.String mismatch")
	}
	if AssetKind(9).String() != "AssetKind(9)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestBondReturnsTrackRates(t *testing.T) {
	// A pure government-bond fund in a near-deterministic rate world should
	// return roughly the implied yield.
	market := testMarket()
	market.Rate.Sigma = 1e-9
	market.Rate.R0 = 0.03
	market.Rate.MeanP = 0.03
	market.Rate.MeanQ = 0.03
	cfg := Config{
		Name:   "bonds",
		Assets: []Asset{{Kind: GovernmentBond, Weight: 1, Maturity: 5}},
	}
	f, err := New(cfg, market)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := stochastic.NewGenerator(market)
	s := g.Generate(finmath.NewRNG(7), stochastic.RealWorld)
	rets := f.Returns(s, 10)
	want := stochastic.ImpliedYield(market.Rate, 0.03, 5)
	for _, r := range rets {
		if math.Abs(r-want) > 1e-3 {
			t.Fatalf("bond return %v, want ~%v", r, want)
		}
	}
}

// fxMarket extends the test market with one currency index.
func fxMarket() stochastic.Config {
	m := testMarket()
	m.Currencies = []stochastic.GBMParams{{S0: 1.1, Mu: 0.01, Sigma: 0.08}}
	return m
}

func TestForeignSleeveValidation(t *testing.T) {
	m := fxMarket()
	cfg := simpleConfig()
	cfg.Assets[2].Currency = 1
	if err := cfg.Validate(m); err != nil {
		t.Fatalf("valid foreign sleeve rejected: %v", err)
	}
	cfg.Assets[2].Currency = 2
	if err := cfg.Validate(m); err == nil {
		t.Fatal("sleeve referencing a missing currency accepted")
	}
	cfg.Assets[2].Currency = -1
	if err := cfg.Validate(m); err == nil {
		t.Fatal("negative currency index accepted")
	}
	// Without currencies in the market, any foreign sleeve is invalid.
	cfg.Assets[2].Currency = 1
	if err := cfg.Validate(testMarket()); err == nil {
		t.Fatal("foreign sleeve accepted against a currency-free market")
	}
}

// TestForeignSleeveCompoundsFX checks the domestic return of a foreign
// sleeve: (1+local)*(1+fx) - 1, so an FX move passes straight into the
// fund's market return.
func TestForeignSleeveCompoundsFX(t *testing.T) {
	m := fxMarket()
	domestic := Config{
		Name:   "dom",
		Assets: []Asset{{Kind: Equity, Weight: 1, EquityIndex: 0}},
	}
	foreign := domestic
	foreign.Name = "for"
	foreign.Assets = []Asset{{Kind: Equity, Weight: 1, EquityIndex: 0, Currency: 1}}

	fd, err := New(domestic, m)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := New(foreign, m)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := stochastic.NewGenerator(m)
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Generate(finmath.NewRNG(5), stochastic.RealWorld)
	rd := fd.MarketReturns(s, 10)
	rf := ff.MarketReturns(s, 10)
	for tt := 1; tt <= 10; tt++ {
		fx0 := s.Currencies[0][s.IndexOfYear(float64(tt-1))]
		fx1 := s.Currencies[0][s.IndexOfYear(float64(tt))]
		want := (1+rd[tt-1])*(fx1/fx0) - 1
		if math.Abs(rf[tt-1]-want) > 1e-12 {
			t.Fatalf("year %d: foreign return %v, want %v", tt, rf[tt-1], want)
		}
	}
}

// TestMarketReturnsIntoMatchesReference pins the hot-loop fund walk (asset-
// major order, carried yields/levels, cached curve constants) against the
// reference per-(year, asset) evaluation: same bits, including corporate
// credit adjustments and foreign-denominated sleeves, and no drift from the
// buffer-reusing entry points.
func TestMarketReturnsIntoMatchesReference(t *testing.T) {
	m := testMarket()
	m.Currencies = []stochastic.GBMParams{{S0: 1.1, Mu: 0.01, Sigma: 0.08}}
	cfg := Config{
		Name: "ref",
		Assets: []Asset{
			{Kind: GovernmentBond, Weight: 0.35, Maturity: 5},
			{Kind: CorporateBond, Weight: 0.25, Maturity: 7, LossGivenDefault: 0.6},
			{Kind: CorporateBond, Weight: 0.15, Maturity: 3, LossGivenDefault: 0.4, Currency: 1},
			{Kind: Equity, Weight: 0.15, EquityIndex: 0},
			{Kind: Equity, Weight: 0.10, EquityIndex: 1, Currency: 1},
		},
		TargetReturn:      0.02,
		SmoothingFraction: 0.5,
		MaxBuffer:         0.08,
	}
	f, err := New(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := stochastic.NewGenerator(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := finmath.NewRNG(11)
	const years = 25
	for rep := 0; rep < 20; rep++ {
		s := gen.Generate(rng, stochastic.RealWorld)
		got := f.MarketReturnsInto(s, years, make([]float64, years), make([]int, years+1))
		for yr := 1; yr <= years; yr++ {
			want := 0.0
			for _, a := range cfg.Assets {
				want += a.Weight * f.assetReturn(a, s, yr)
			}
			if got[yr-1] != want {
				t.Fatalf("rep %d year %d: hot-loop return %v != reference %v (bit drift)", rep, yr, got[yr-1], want)
			}
		}
		// The buffered credited-return walk must match the allocating one.
		book := f.Returns(s, years)
		into := f.ReturnsInto(s, years, make([]float64, years), make([]float64, years), make([]int, years+1))
		for k := range book {
			if book[k] != into[k] {
				t.Fatalf("credited return %d drifted between Returns and ReturnsInto", k)
			}
		}
	}
}
