// Package fund models the segregated fund ("gestione separata") backing
// Italian profit-sharing policies. The key feature, stressed in Section II
// of the paper, is that the credited return I_t is computed on BOOK values,
// not market values, so the fund manager can strategically smooth returns by
// choosing when to realise capital gains. The package implements a bond +
// equity asset mix whose market returns are driven by the stochastic
// scenario, a gain-realisation management strategy, and the resulting
// book-value return path I_1..I_T of Eq. (4).
package fund

import (
	"errors"
	"fmt"
	"math"

	"disarcloud/internal/stochastic"
)

// AssetKind distinguishes the sleeves of the segregated fund.
type AssetKind int

const (
	// GovernmentBond is a default-free rolling bond sleeve priced off the
	// Vasicek short rate.
	GovernmentBond AssetKind = iota + 1
	// CorporateBond is a bond sleeve that additionally carries credit risk:
	// expected default losses proportional to the CIR intensity.
	CorporateBond
	// Equity tracks one of the scenario's GBM equity indices.
	Equity
)

// String implements fmt.Stringer.
func (k AssetKind) String() string {
	switch k {
	case GovernmentBond:
		return "govt-bond"
	case CorporateBond:
		return "corp-bond"
	case Equity:
		return "equity"
	default:
		return fmt.Sprintf("AssetKind(%d)", int(k))
	}
}

// Asset is one sleeve of the segregated fund.
type Asset struct {
	Kind             AssetKind
	Weight           float64 // target allocation weight; weights must sum to 1
	Maturity         float64 // rolling bond maturity in years (bond kinds)
	EquityIndex      int     // index into Scenario.Equities (Equity kind)
	LossGivenDefault float64 // fraction lost on default (CorporateBond kind)
	// Currency denominates the sleeve in a foreign currency: 1-based index
	// into Scenario.Currencies, 0 for the domestic (euro) book. A foreign
	// sleeve's domestic return compounds the local asset return with the
	// currency index return, which is what gives the Solvency II FX stress
	// module a real transmission channel into the fund.
	Currency int
}

// Config describes a segregated fund and its management strategy.
type Config struct {
	Name   string
	Assets []Asset

	// TargetReturn is the book return the manager steers toward by
	// realising or deferring capital gains.
	TargetReturn float64
	// SmoothingFraction in [0,1] is the share of excess market return
	// stashed into the unrealised-gain buffer in good years (0 disables
	// smoothing and book returns equal market returns).
	SmoothingFraction float64
	// MaxBuffer caps the unrealised-gain buffer as a fraction of fund value.
	MaxBuffer float64
}

// Validate reports whether the fund configuration is admissible against the
// given market model (equity indices must exist).
func (c Config) Validate(market stochastic.Config) error {
	if len(c.Assets) == 0 {
		return errors.New("fund: no assets")
	}
	total := 0.0
	for i, a := range c.Assets {
		if a.Weight < 0 {
			return fmt.Errorf("fund: asset %d has negative weight", i)
		}
		total += a.Weight
		switch a.Kind {
		case GovernmentBond, CorporateBond:
			if a.Maturity <= 0 {
				return fmt.Errorf("fund: bond asset %d needs positive maturity", i)
			}
			if a.Kind == CorporateBond && (a.LossGivenDefault < 0 || a.LossGivenDefault > 1) {
				return fmt.Errorf("fund: asset %d LGD outside [0,1]", i)
			}
		case Equity:
			if a.EquityIndex < 0 || a.EquityIndex >= len(market.Equities) {
				return fmt.Errorf("fund: asset %d references equity %d of %d",
					i, a.EquityIndex, len(market.Equities))
			}
		default:
			return fmt.Errorf("fund: asset %d has unknown kind %d", i, int(a.Kind))
		}
		if a.Currency < 0 || a.Currency > len(market.Currencies) {
			return fmt.Errorf("fund: asset %d references currency %d of %d",
				i, a.Currency, len(market.Currencies))
		}
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("fund: weights sum to %v, want 1", total)
	}
	if c.SmoothingFraction < 0 || c.SmoothingFraction > 1 {
		return errors.New("fund: smoothing fraction outside [0,1]")
	}
	if c.MaxBuffer < 0 {
		return errors.New("fund: negative buffer cap")
	}
	return nil
}

// NumAssets returns the number of fund sleeves — the "segregated fund asset
// number" characteristic parameter of the ML models.
func (c Config) NumAssets() int { return len(c.Assets) }

// Fund evaluates book-value return paths along scenarios.
type Fund struct {
	cfg  Config
	rate stochastic.VasicekParams
	// yields caches, per asset sleeve, the maturity-constant terms of the
	// sleeve's zero-coupon curve point (bond kinds only): the bond leg is
	// repriced once per simulated (path, year), so hoisting the constants
	// out of the hot loop matters. Cached yields are bit-identical to
	// stochastic.ImpliedYield.
	yields []stochastic.YieldCache
}

// New builds a fund evaluator. rate must be the same short-rate model used
// to generate the scenarios the fund will be evaluated on.
func New(cfg Config, market stochastic.Config) (*Fund, error) {
	if err := cfg.Validate(market); err != nil {
		return nil, err
	}
	f := &Fund{cfg: cfg, rate: market.Rate, yields: make([]stochastic.YieldCache, len(cfg.Assets))}
	for i, a := range cfg.Assets {
		if a.Kind == GovernmentBond || a.Kind == CorporateBond {
			f.yields[i] = stochastic.NewYieldCache(market.Rate, a.Maturity)
		}
	}
	return f, nil
}

// Config returns the fund configuration.
func (f *Fund) Config() Config { return f.cfg }

// MarketReturns returns the fund's annual MARKET-value returns along the
// scenario for the first `years` years (before management smoothing).
func (f *Fund) MarketReturns(s *stochastic.Scenario, years int) []float64 {
	return f.MarketReturnsInto(s, years, make([]float64, years), make([]int, years+1))
}

// MarketReturnsInto is MarketReturns writing into caller-owned buffers: out
// must hold years values and idx years+1 grid indices. It is the valuation
// hot loop's entry point — called once per inner path — so it walks the
// assets in the outer loop and carries the per-asset state that consecutive
// years share: the yield at year t-1 IS the yield computed for year t-2's
// revaluation, so each bond sleeve prices one zero-coupon curve point per
// year instead of two, and each index sleeve reads each grid level once.
// Carried values are reused results of the exact same pure-function calls,
// and per-year contributions accumulate in the same asset order, so the
// output is bit-identical to the one-asset-at-a-time form.
func (f *Fund) MarketReturnsInto(s *stochastic.Scenario, years int, out []float64, idx []int) []float64 {
	out = out[:years]
	clear(out)
	idx = idx[:years+1]
	for t := 0; t <= years; t++ {
		idx[t] = s.IndexOfYear(float64(t))
	}
	for ai, a := range f.cfg.Assets {
		var fxPath []float64
		var fx0 float64
		if a.Currency != 0 {
			fxPath = s.Currencies[a.Currency-1]
			fx0 = fxPath[idx[0]]
		}
		switch a.Kind {
		case Equity:
			path := s.Equities[a.EquityIndex]
			p0 := path[idx[0]]
			for t := 1; t <= years; t++ {
				p1 := path[idx[t]]
				local := p1/p0 - 1
				p0 = p1
				ret := local
				if fxPath != nil {
					fx1 := fxPath[idx[t]]
					ret = (1+local)*(fx1/fx0) - 1
					fx0 = fx1
				}
				out[t-1] += a.Weight * ret
			}
		case GovernmentBond, CorporateBond:
			duration := 0.85 * a.Maturity
			curve := f.yields[ai]
			y0 := curve.Yield(s.Rates[idx[0]])
			for t := 1; t <= years; t++ {
				y1 := curve.Yield(s.Rates[idx[t]])
				local := y0 - duration*(y1-y0)
				y0 = y1
				if a.Kind == CorporateBond {
					lambda := math.Max(s.Credit[idx[t]], 0)
					local += 1.5*lambda - a.LossGivenDefault*lambda
				}
				ret := local
				if fxPath != nil {
					fx1 := fxPath[idx[t]]
					ret = (1+local)*(fx1/fx0) - 1
					fx0 = fx1
				}
				out[t-1] += a.Weight * ret
			}
		}
	}
	return out
}

// assetReturn is the market return of one sleeve over year [t-1, t], in
// domestic terms: foreign sleeves compound the local return with the
// currency index return. It is the reference implementation the carried
// state of MarketReturnsInto is tested against (bit-identity), kept out of
// the hot loop because it reprices the curve point at both endpoints of
// every year.
func (f *Fund) assetReturn(a Asset, s *stochastic.Scenario, t int) float64 {
	local := f.localReturn(a, s, t)
	if a.Currency == 0 {
		return local
	}
	fx0 := s.Currencies[a.Currency-1][s.IndexOfYear(float64(t-1))]
	fx1 := s.Currencies[a.Currency-1][s.IndexOfYear(float64(t))]
	return (1+local)*(fx1/fx0) - 1
}

// localReturn is the sleeve's return in its own denomination currency.
func (f *Fund) localReturn(a Asset, s *stochastic.Scenario, t int) float64 {
	switch a.Kind {
	case Equity:
		p0 := s.Equities[a.EquityIndex][s.IndexOfYear(float64(t-1))]
		p1 := s.Equities[a.EquityIndex][s.IndexOfYear(float64(t))]
		return p1/p0 - 1
	case GovernmentBond, CorporateBond:
		// Rolling bond sleeve: carry at last year's yield plus the price
		// effect of the yield change over a duration of ~0.85*maturity.
		r0 := s.RateAtYear(float64(t - 1))
		r1 := s.RateAtYear(float64(t))
		y0 := stochastic.ImpliedYield(f.rate, r0, a.Maturity)
		y1 := stochastic.ImpliedYield(f.rate, r1, a.Maturity)
		duration := 0.85 * a.Maturity
		ret := y0 - duration*(y1-y0)
		if a.Kind == CorporateBond {
			// Credit carry spread minus expected default loss at the
			// prevailing intensity.
			lambda := math.Max(s.Credit[s.IndexOfYear(float64(t))], 0)
			ret += 1.5*lambda - a.LossGivenDefault*lambda
		}
		return ret
	default:
		return 0
	}
}

// Returns computes the BOOK-value return path I_1..I_years of Eq. (4) along
// the scenario, applying the gain-realisation smoothing strategy: in years
// when the market outperforms the target, a SmoothingFraction of the excess
// is left unrealised (capped at MaxBuffer); in lean years the manager
// realises buffered gains to lift the credited return toward the target.
func (f *Fund) Returns(s *stochastic.Scenario, years int) []float64 {
	return f.ReturnsInto(s, years, make([]float64, years), make([]float64, years), make([]int, years+1))
}

// ReturnsInto is Returns writing into caller-owned buffers: out and market
// must hold years values each, idx years+1 indices. The returned slice is
// the credited-return path (one of the two buffers).
func (f *Fund) ReturnsInto(s *stochastic.Scenario, years int, out, market []float64, idx []int) []float64 {
	market = f.MarketReturnsInto(s, years, market, idx)
	if f.cfg.SmoothingFraction == 0 {
		return market
	}
	out = out[:years]
	buffer := 0.0
	for t, m := range market {
		credited := m
		if m > f.cfg.TargetReturn {
			stash := f.cfg.SmoothingFraction * (m - f.cfg.TargetReturn)
			if buffer+stash > f.cfg.MaxBuffer {
				stash = math.Max(f.cfg.MaxBuffer-buffer, 0)
			}
			credited = m - stash
			buffer += stash
		} else if buffer > 0 {
			release := math.Min(buffer, f.cfg.TargetReturn-m)
			credited = m + release
			buffer -= release
		}
		out[t] = credited
	}
	return out
}

// TypicalItalianFund returns a fund configuration resembling a real Italian
// segregated fund of the paper's era: government-bond heavy with corporate
// and equity sleeves, 2% target and moderate smoothing. numAssets >= 3
// controls how many sleeves the fund is split into (more sleeves = more
// valuation work per scenario, one of the ML characteristic parameters).
func TypicalItalianFund(numAssets int, market stochastic.Config) Config {
	if numAssets < 3 {
		numAssets = 3
	}
	assets := make([]Asset, 0, numAssets)
	// One equity sleeve per available index, round-robin; the rest bonds
	// with laddered maturities, 70/30 government/corporate.
	nEq := len(market.Equities)
	equitySleeves := numAssets / 4
	if equitySleeves < 1 && nEq > 0 {
		equitySleeves = 1
	}
	bondSleeves := numAssets - equitySleeves
	eqWeight := 0.15
	if equitySleeves == 0 {
		eqWeight = 0
	}
	for i := 0; i < equitySleeves; i++ {
		assets = append(assets, Asset{
			Kind:        Equity,
			Weight:      eqWeight / float64(equitySleeves),
			EquityIndex: i % nEq,
		})
	}
	bondWeight := (1 - eqWeight) / float64(bondSleeves)
	for i := 0; i < bondSleeves; i++ {
		maturity := 2 + 2*float64(i%6) // ladder: 2..12y
		if i%3 == 2 {
			assets = append(assets, Asset{
				Kind: CorporateBond, Weight: bondWeight,
				Maturity: maturity, LossGivenDefault: 0.6,
			})
		} else {
			assets = append(assets, Asset{
				Kind: GovernmentBond, Weight: bondWeight, Maturity: maturity,
			})
		}
	}
	return Config{
		Name:              fmt.Sprintf("segfund-%d", numAssets),
		Assets:            assets,
		TargetReturn:      0.02,
		SmoothingFraction: 0.5,
		MaxBuffer:         0.08,
	}
}
