package kb

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"disarcloud/internal/eeb"
)

func sample(arch string, nodes int, secs float64) Sample {
	return Sample{
		Architecture: arch,
		Nodes:        nodes,
		Params: eeb.CharacteristicParams{
			RepresentativeContracts: 10, MaxHorizon: 20, FundAssets: 5,
			RiskFactors: 3, OuterPaths: 1000, InnerPaths: 50,
		},
		Seconds: secs,
	}
}

func TestSampleValidate(t *testing.T) {
	if err := sample("c3.4xlarge", 2, 100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Sample{
		func() Sample { s := sample("", 2, 100); return s }(),
		func() Sample { s := sample("a", 0, 100); return s }(),
		func() Sample { s := sample("a", 2, 0); return s }(),
		func() Sample { s := sample("a", 2, 100); s.Params.MaxHorizon = 0; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sample %d accepted", i)
		}
	}
}

func TestAddAndQuery(t *testing.T) {
	k := New()
	if err := k.Add(sample("c3.4xlarge", 1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := k.Add(sample("c3.4xlarge", 2, 60)); err != nil {
		t.Fatal(err)
	}
	if err := k.Add(sample("m4.4xlarge", 1, 130)); err != nil {
		t.Fatal(err)
	}
	if err := k.Add(sample("", 1, 1)); err == nil {
		t.Fatal("invalid sample accepted")
	}
	if k.Len() != 3 {
		t.Fatalf("Len = %d", k.Len())
	}
	if got := len(k.ByArchitecture("c3.4xlarge")); got != 2 {
		t.Fatalf("ByArchitecture = %d entries", got)
	}
	archs := k.Architectures()
	if len(archs) != 2 || archs[0] != "c3.4xlarge" || archs[1] != "m4.4xlarge" {
		t.Fatalf("Architectures = %v", archs)
	}
}

func TestSamplesReturnsCopy(t *testing.T) {
	k := New()
	_ = k.Add(sample("x.large", 1, 50))
	got := k.Samples()
	got[0].Seconds = 999
	if k.Samples()[0].Seconds != 50 {
		t.Fatal("Samples exposed internal storage")
	}
}

func TestDatasetSchema(t *testing.T) {
	k := New()
	_ = k.Add(sample("c4.8xlarge", 3, 200))
	d := k.Dataset("c4.8xlarge")
	if d.Len() != 1 {
		t.Fatalf("dataset has %d rows", d.Len())
	}
	if d.NumFeatures() != 7 { // nodes + 6 characteristic params
		t.Fatalf("dataset has %d features", d.NumFeatures())
	}
	row := d.Instances[0]
	if row.Features[0] != 3 || row.Target != 200 {
		t.Fatalf("row = %+v", row)
	}
	if len(FeatureNames()) != 7 {
		t.Fatalf("FeatureNames = %v", FeatureNames())
	}
	if k.Dataset("nonexistent").Len() != 0 {
		t.Fatal("unknown architecture should give empty dataset")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	k := New()
	_ = k.Add(sample("c3.4xlarge", 1, 111.5))
	_ = k.Add(sample("m4.10xlarge", 4, 95.25))
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d samples", loaded.Len())
	}
	if loaded.Samples()[1].Seconds != 95.25 {
		t.Fatal("payload corrupted in round trip")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid JSON, invalid sample.
	if _, err := Load(bytes.NewBufferString(`[{"architecture":"","nodes":1,"params":{},"seconds":5}]`)); err == nil {
		t.Fatal("invalid sample accepted on load")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.json")
	k := New()
	_ = k.Add(sample("c3.8xlarge", 2, 300))
	if err := k.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatal("file round trip lost samples")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	k := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = k.Add(sample("c3.4xlarge", g+1, float64(i+1)))
				_ = k.Len()
				_ = k.ByArchitecture("c3.4xlarge")
			}
		}(g)
	}
	wg.Wait()
	if k.Len() != 800 {
		t.Fatalf("Len = %d after concurrent adds", k.Len())
	}
}
