package kb

import (
	"testing"

	"disarcloud/internal/eeb"
)

func mergeSample(arch string, nodes int, secs float64) Sample {
	return Sample{
		Architecture: arch,
		Nodes:        nodes,
		Params: eeb.CharacteristicParams{
			RepresentativeContracts: 10, MaxHorizon: 20, FundAssets: 5,
			RiskFactors: 4, OuterPaths: 100, InnerPaths: 10,
		},
		Seconds: secs,
	}
}

func TestMergeUnionAndIdempotence(t *testing.T) {
	a, b := New(), New()
	s1 := mergeSample("c4", 2, 10)
	s2 := mergeSample("c4", 4, 6)
	s3 := mergeSample("m4", 1, 30)
	for _, s := range []Sample{s1, s2} {
		if err := a.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []Sample{s2, s3} {
		if err := b.Add(s); err != nil {
			t.Fatal(err)
		}
	}

	if added := a.Merge(b.Samples()); added != 1 {
		t.Fatalf("first merge added %d, want 1 (only the unseen sample)", added)
	}
	if a.Len() != 3 {
		t.Fatalf("merged size %d, want 3", a.Len())
	}
	// Replaying the same batch must be a no-op — the property that lets the
	// cluster gossip without coordination.
	if added := a.Merge(b.Samples()); added != 0 {
		t.Fatalf("replayed merge added %d, want 0", added)
	}
	if a.Len() != 3 {
		t.Fatalf("size after replay %d, want 3", a.Len())
	}
}

func TestMergeIsCommutative(t *testing.T) {
	s1, s2, s3 := mergeSample("c4", 2, 10), mergeSample("c4", 3, 8), mergeSample("m4", 1, 30)
	build := func(ss ...Sample) *KB {
		k := New()
		for _, s := range ss {
			if err := k.Add(s); err != nil {
				t.Fatal(err)
			}
		}
		return k
	}
	ab := build(s1, s2)
	ab.Merge(build(s2, s3).Samples())
	ba := build(s2, s3)
	ba.Merge(build(s1, s2).Samples())

	count := func(k *KB) map[Sample]int {
		m := map[Sample]int{}
		for _, s := range k.Samples() {
			m[s]++
		}
		return m
	}
	ca, cb := count(ab), count(ba)
	if len(ca) != len(cb) {
		t.Fatalf("merge order changed the multiset: %v vs %v", ca, cb)
	}
	for s, n := range ca {
		if cb[s] != n {
			t.Fatalf("sample %+v counted %d one way, %d the other", s, n, cb[s])
		}
	}
}

func TestMergeKeepsDuplicateMultiplicity(t *testing.T) {
	// Two genuinely repeated executions with identical timing on one node,
	// one on the other: the union keeps the larger multiplicity.
	s := mergeSample("c4", 2, 10)
	a, b := New(), New()
	for i := 0; i < 2; i++ {
		if err := a.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Add(s); err != nil {
		t.Fatal(err)
	}
	if added := a.Merge(b.Samples()); added != 0 {
		t.Fatalf("lower remote multiplicity added %d, want 0", added)
	}
	if added := b.Merge(a.Samples()); added != 1 {
		t.Fatalf("higher remote multiplicity added %d, want 1", added)
	}
	if b.Len() != 2 {
		t.Fatalf("merged size %d, want 2", b.Len())
	}
}

func TestMergeSkipsInvalidSamples(t *testing.T) {
	k := New()
	bad := mergeSample("", 2, 10) // no architecture
	if added := k.Merge([]Sample{bad, mergeSample("c4", 1, 5)}); added != 1 {
		t.Fatalf("added %d, want 1 (invalid sample skipped)", added)
	}
	if k.Len() != 1 {
		t.Fatalf("size %d, want 1", k.Len())
	}
}
