// Package kb implements the knowledge base of the self-optimizing loop: a
// thread-safe store of execution samples (architecture, node count,
// characteristic parameters, measured seconds) that grows with every real
// simulation and feeds the per-architecture training sets of the ML
// prediction models (Section III of the paper).
package kb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"disarcloud/internal/eeb"
	"disarcloud/internal/ml"
)

// Sample is one recorded execution of a type-B workload on a cloud deploy.
type Sample struct {
	Architecture string                   `json:"architecture"`
	Nodes        int                      `json:"nodes"`
	Params       eeb.CharacteristicParams `json:"params"`
	Seconds      float64                  `json:"seconds"`
}

// Validate reports whether the sample is well-formed.
func (s Sample) Validate() error {
	if s.Architecture == "" {
		return errors.New("kb: sample without architecture")
	}
	if s.Nodes <= 0 {
		return errors.New("kb: sample with non-positive node count")
	}
	if err := s.Params.Validate(); err != nil {
		return err
	}
	if s.Seconds <= 0 {
		return errors.New("kb: sample with non-positive duration")
	}
	return nil
}

// KB is the sample store. The zero value is ready to use.
type KB struct {
	mu      sync.RWMutex
	samples []Sample
}

// New returns an empty knowledge base.
func New() *KB { return &KB{} }

// Add validates and appends a sample.
func (k *KB) Add(s Sample) error {
	if err := s.Validate(); err != nil {
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.samples = append(k.samples, s)
	return nil
}

// Remove deletes the most recently added sample equal to s and reports
// whether one was found. It exists for the panic path of a deployed
// valuation: the execution-time sample of a job that subsequently crashed
// must be recorded back out of the knowledge base, or the predictors train
// on the timing of a computation that never produced a result.
func (k *KB) Remove(s Sample) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	for i := len(k.samples) - 1; i >= 0; i-- {
		if k.samples[i] == s {
			k.samples = append(k.samples[:i], k.samples[i+1:]...)
			return true
		}
	}
	return false
}

// Merge folds remote samples into the knowledge base as a multiset
// maximum-union: for each distinct sample value, the merged store keeps
// max(local count, remote count) copies. The operation is idempotent,
// commutative and associative, so the periodic gossip exchange of a cluster
// converges every node's knowledge base to the same multiset no matter the
// sync order or how often the same batch is replayed — while genuinely
// repeated executions (same architecture, nodes, params AND seconds, which
// jittered measurements make vanishingly rare) are still counted once per
// occurrence. Invalid samples are skipped. Merge returns how many samples
// were added.
func (k *KB) Merge(remote []Sample) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	local := make(map[Sample]int, len(k.samples))
	for _, s := range k.samples {
		local[s]++
	}
	incoming := make(map[Sample]int, len(remote))
	added := 0
	for _, s := range remote {
		if s.Validate() != nil {
			continue
		}
		incoming[s]++
		if incoming[s] > local[s] {
			k.samples = append(k.samples, s)
			added++
		}
	}
	return added
}

// Len returns the number of stored samples.
func (k *KB) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.samples)
}

// Samples returns a copy of all samples.
func (k *KB) Samples() []Sample {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return append([]Sample(nil), k.samples...)
}

// ByArchitecture returns the samples recorded on one instance type.
func (k *KB) ByArchitecture(name string) []Sample {
	k.mu.RLock()
	defer k.mu.RUnlock()
	var out []Sample
	for _, s := range k.samples {
		if s.Architecture == name {
			out = append(out, s)
		}
	}
	return out
}

// Architectures returns the distinct architecture names present, in first-
// seen order.
func (k *KB) Architectures() []string {
	k.mu.RLock()
	defer k.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, s := range k.samples {
		if !seen[s.Architecture] {
			seen[s.Architecture] = true
			out = append(out, s.Architecture)
		}
	}
	return out
}

// FeatureNames returns the ML feature schema of Dataset rows:
// the node count followed by the characteristic parameters.
func FeatureNames() []string {
	return append([]string{"nodes"}, eeb.FeatureNames()...)
}

// Features returns the ML feature vector of a sample.
func (s Sample) Features() []float64 {
	return append([]float64{float64(s.Nodes)}, s.Params.Features()...)
}

// Dataset builds the training set for one architecture: features are
// [nodes, contracts, horizon, assets, riskfactors, outer, inner], target is
// the measured seconds. The paper trains one model set per architecture
// ("each of the six training set").
func (k *KB) Dataset(architecture string) *ml.Dataset {
	d := ml.NewDataset(FeatureNames())
	for _, s := range k.ByArchitecture(architecture) {
		// Add cannot fail here: features always match the schema.
		if err := d.Add(s.Features(), s.Seconds); err != nil {
			panic(fmt.Sprintf("kb: internal schema error: %v", err))
		}
	}
	return d
}

// Save writes the knowledge base as JSON.
func (k *KB) Save(w io.Writer) error {
	k.mu.RLock()
	defer k.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(k.samples)
}

// Load reads a knowledge base previously written by Save, validating every
// sample.
func Load(r io.Reader) (*KB, error) {
	var samples []Sample
	if err := json.NewDecoder(r).Decode(&samples); err != nil {
		return nil, fmt.Errorf("kb: decode: %w", err)
	}
	k := New()
	for i, s := range samples {
		if err := k.Add(s); err != nil {
			return nil, fmt.Errorf("kb: sample %d: %w", i, err)
		}
	}
	return k, nil
}

// SaveFile writes the knowledge base to a file path.
func (k *KB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kb: %w", err)
	}
	defer f.Close()
	if err := k.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a knowledge base from a file path.
func LoadFile(path string) (*KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kb: %w", err)
	}
	defer f.Close()
	return Load(f)
}
