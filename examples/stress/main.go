// Example stress walks through the Solvency II stress-campaign subsystem:
// one best-estimate valuation fanned into the seven standard-formula shock
// modules (plus longevity), all sharing one scenario set, aggregated into
// the basic SCR with the regulatory correlation matrices.
//
// The walkthrough shows the three layers of the subsystem:
//
//  1. the market model with FX exposure and a correlation structure, so
//     every module has a real transmission channel into the fund;
//  2. Service.SubmitCampaign, which generates the base correlated paths
//     once and derives every module's scenarios by shift/rescale; and
//  3. the same campaign with NoScenarioReuse, demonstrating that reuse
//     changes the wall time and not a single digit of the results.
//
// Run with: go run ./examples/stress
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"disarcloud"
)

func main() {
	// An annuity-tilted book makes the life modules (longevity in
	// particular) bite alongside the market ones.
	gen := disarcloud.ItalianCompanySpecs()[2]
	gen.NumContracts = 12
	portfolio, err := disarcloud.GeneratePortfolio(7, gen)
	if err != nil {
		log.Fatal(err)
	}

	// A market with two equity indices, one foreign currency and a full
	// correlation structure. The FX stress only matters because the fund
	// below holds a foreign-denominated sleeve.
	market := disarcloud.DefaultMarket(portfolio.MaxTerm())
	market.Equities = append(market.Equities,
		disarcloud.GBMParams{S0: 80, Mu: 0.055, Sigma: 0.22})
	market.Currencies = []disarcloud.GBMParams{{S0: 1.1, Mu: 0.005, Sigma: 0.09}}
	corr := disarcloud.IdentityMatrix(market.NumFactors())
	set := func(i, j int, v float64) { corr.Set(i, j, v); corr.Set(j, i, v) }
	set(0, 1, -0.2) // rate vs equity 1
	set(1, 2, 0.6)  // equity 1 vs equity 2
	set(1, 3, 0.25) // equity 1 vs FX
	set(0, 4, 0.2)  // rate vs credit
	market.Corr = corr

	// A segregated fund of eight sleeves; with two equity sleeves, the
	// second tracks the second index and is foreign-denominated (Currency is
	// a 1-based index into the market's currency list), giving the FX module
	// its transmission channel.
	fund := disarcloud.TypicalItalianFund(8, market)
	fund.Assets[1].Currency = 1

	base := disarcloud.SimulationSpec{
		Portfolio:   portfolio,
		Fund:        fund,
		Market:      market,
		Outer:       300,
		Inner:       10,
		Constraints: disarcloud.Constraints{TmaxSeconds: 900, MaxNodes: 8, Epsilon: 0.05},
		Seed:        2024,
	}

	d, err := disarcloud.NewDeployer(2024)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	// The standard seven modules plus longevity for the annuity book.
	shocks := append(disarcloud.StandardFormulaShocks(), disarcloud.LongevityShock())

	fmt.Println("== campaign with shared scenario set ==")
	reuseStart := time.Now()
	id, err := svc.SubmitCampaign(ctx, disarcloud.CampaignSpec{Base: base, Shocks: shocks})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := svc.CampaignResult(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	reuseElapsed := time.Since(reuseStart)
	printReport(rep)

	fmt.Println("\n== same campaign, independent scenario generation ==")
	indepStart := time.Now()
	id2, err := svc.SubmitCampaign(ctx, disarcloud.CampaignSpec{
		Base: base, Shocks: shocks, NoScenarioReuse: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := svc.CampaignResult(ctx, id2)
	if err != nil {
		log.Fatal(err)
	}
	indepElapsed := time.Since(indepStart)

	same := rep.BaseBEL == rep2.BaseBEL && rep.SCR == rep2.SCR
	for i := range rep.Modules {
		same = same && rep.Modules[i].BEL == rep2.Modules[i].BEL
	}
	fmt.Printf("results identical to the reuse campaign: %v\n", same)
	fmt.Printf("\nwall time: %v with reuse vs %v independent (%d jobs each)\n",
		reuseElapsed.Round(time.Millisecond), indepElapsed.Round(time.Millisecond), len(rep.Modules)+1)
	fmt.Printf("knowledge base grew to %d samples — every shocked revaluation trains the deployer\n",
		d.KB().Len())
}

func printReport(rep *disarcloud.CampaignReport) {
	fmt.Printf("base BEL %.0f (base-job 99.5%% VaR: %.0f)\n", rep.BaseBEL, rep.BaseVaRSCR)
	fmt.Printf("%-14s %14s %14s\n", "module", "shocked BEL", "delta BEL")
	for _, m := range rep.Modules {
		fmt.Printf("%-14s %14.0f %14.0f\n", m.Module, m.BEL, m.DeltaBEL)
	}
	scr := rep.SCR
	binding := "up"
	if scr.InterestDownBinding {
		binding = "down"
	}
	fmt.Printf("interest %.0f (%s binding) | market %.0f | life %.0f | basic SCR %.0f\n",
		scr.Interest, binding, scr.Market, scr.Life, scr.BSCR)
}
