// Learned: the offline-trained Q-learning autoscaling policy, end to end.
// Part one loads the shipped Q-table artifact (training one from the
// default spec if the file is absent) and replays all trace families
// through the deterministic backlog simulator under the reactive, hybrid
// and learned policies — the learned table should cut the hybrid's p95
// latency at equal or lower worker-seconds on every family. Part two
// model-checks the same table exactly (internal/verify re-encodes it as a
// tick FSM) against the shipped SLA, the gate CI runs on every push. Part
// three installs the table as a live service's scaling policy and reads the
// active policy and its hyperparameters back off the autoscaler status —
// what GET /v1/autoscaler serves on the daemon.
package main

import (
	"fmt"
	"log"
	"os"

	"disarcloud"
	"disarcloud/internal/experiments"
)

func main() {
	const artifact = "testdata/qtable_v1.json"
	table, err := disarcloud.LoadQTable(artifact)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Fatal(err)
		}
		fmt.Printf("no artifact at %s; training the default spec (a few seconds)...\n\n", artifact)
		if table, err = disarcloud.TrainQTable(disarcloud.DefaultQTableSpec()); err != nil {
			log.Fatal(err)
		}
	}
	spec := table.Spec
	fmt.Printf("Q-table v%d: %d states x %d actions, pool %d..%d, trained %d episodes over %d trace families\n\n",
		table.Version, spec.NumStates(), spec.NumActions(), spec.MinWorkers, spec.MaxWorkers,
		spec.Episodes, len(spec.Traces))

	cmp, err := experiments.RunPolicyComparison(table)
	if err != nil {
		log.Fatal(err)
	}
	cmp.Print(os.Stdout)

	// The same table, bounded exactly: P(queue >= 32 within 60 ticks) under
	// the diurnal family, computed by exhaustive model checking — not
	// sampling — of the policy's tick FSM.
	report, err := disarcloud.VerifyPolicy(disarcloud.VerifyRequest{
		Policy:        "learned",
		Table:         table,
		TickMS:        spec.TickMS,
		MeanRuntimeMS: spec.MeanRuntimeMS,
		MaxQueue:      spec.MaxQueue,
		Trace:         spec.Traces[0],
		SLA:           disarcloud.VerifySLA{QueueBound: 32, HorizonTicks: 60, MaxProbability: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact SLA bound (%s trace, %d states explored): P(queue >= %d within %d ticks) = %.6f",
		spec.Traces[0].Kind, report.Properties.States,
		report.Request.SLA.QueueBound, report.Request.SLA.HorizonTicks, report.Properties.PViolation)
	if report.Pass {
		fmt.Printf(" <= %.2f  PASS\n", report.Request.SLA.MaxProbability)
	} else {
		fmt.Printf(" > %.2f  FAIL\n", report.Request.SLA.MaxProbability)
	}

	// The live wiring: the table as a service's scaling policy.
	d, err := disarcloud.NewDeployer(2016)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := disarcloud.NewService(d,
		disarcloud.WithWorkers(spec.MinWorkers),
		disarcloud.WithElastic(disarcloud.ElasticConfig{
			MinWorkers: spec.MinWorkers, MaxWorkers: spec.MaxWorkers,
		}),
		disarcloud.WithLearnedPolicy(table),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	st := svc.AutoscalerStatus()
	fmt.Printf("\nlive service policy: %q (workers %d, bounds %d..%d)\n",
		st.Policy, st.Workers, st.Config.MinWorkers, st.Config.MaxWorkers)
	fmt.Printf("hyperparameters: alpha=%g gamma=%g epsilon=%g episodes=%g states=%g\n",
		st.PolicyParams["alpha"], st.PolicyParams["gamma"], st.PolicyParams["epsilon"],
		st.PolicyParams["episodes"], st.PolicyParams["states"])
}
