// Forecast: proactive provisioning from workload forecasts. Part one
// generates the synthetic demand traces (internal/loadgen) and shows the
// rolling-backtest model selection picking a different forecaster per trace
// shape. Part two replays the bursty and diurnal traces against the same
// valuation service twice — reactive-only autoscaling versus the hybrid
// policy, where a planner feed-forwards forecast-arrival-rate times
// KB-predicted job runtime into the worker target — and compares p95 job
// latency against worker-seconds consumed. The hybrid run should cut the
// latency tail at equal or lower capacity cost: it pays for workers just
// before the demand arrives instead of just after the queue has built.
package main

import (
	"fmt"
	"log"

	"disarcloud"
	"disarcloud/internal/experiments"
)

func main() {
	const seed = 2016

	fmt.Println("synthetic traces (96 intervals, seeded):")
	fmt.Println("trace     total  mean/ivl  peak/ivl")
	for _, kind := range disarcloud.TraceKindsAll() {
		spec := disarcloud.TraceSpec{
			Kind: kind, Intervals: 96, Seed: seed, BaseRate: 0.6, PeakRate: 4, Period: 24,
		}
		counts, err := disarcloud.GenerateTrace(spec)
		if err != nil {
			log.Fatal(err)
		}
		peak := 0
		for _, c := range counts {
			if c > peak {
				peak = c
			}
		}
		total := disarcloud.TraceTotal(counts)
		fmt.Printf("%-8s  %5d  %8.2f  %8d\n", kind, total, float64(total)/float64(len(counts)), peak)
	}

	fmt.Println("\nreactive vs hybrid (feed-forward) provisioning over the traces:")
	cmps, err := experiments.RunForecastComparison(seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, cmp := range cmps {
		fmt.Printf("\n%s trace (%d jobs):\n", cmp.Trace, cmp.Reactive.Jobs)
		fmt.Println("policy    p50        p95        max        wall       peak  worker-sec  decisions  model")
		row := func(name string, s experiments.ForecastRunStats) {
			fmt.Printf("%-8s  %-9s  %-9s  %-9s  %-9s  %4d  %10.2f  %9d  %s\n",
				name, s.P50.Round(1e6), s.P95.Round(1e6), s.Max.Round(1e6),
				s.Wall.Round(1e6), s.PeakWorkers, s.WorkerSeconds, s.Decisions, s.Model)
		}
		row("reactive", cmp.Reactive)
		row("hybrid", cmp.Hybrid)
		fmt.Printf("p95: %.2fx better, worker-seconds: %.2fx\n",
			float64(cmp.Reactive.P95)/float64(cmp.Hybrid.P95),
			cmp.Hybrid.WorkerSeconds/cmp.Reactive.WorkerSeconds)
	}
}
