// Example proxy walks through the LSMC proxy-model serving tier: a
// Solvency II valuation answered by a cheap trained proxy with an
// uncertainty gate, escalating only the hard outer scenarios to full nested
// Monte Carlo.
//
// The walkthrough shows the tier at its three surfaces:
//
//  1. a plain nested job as the exact baseline;
//  2. the same job with a ProxySpec attached — the report's ProxyReport
//     carries the proxy-vs-escalated split, the out-of-sample validation
//     error and the realized escalation error, while BEL/SCR stay within
//     the stated error budget of the exact run;
//  3. a full stress campaign through the proxy (the spec propagates from
//     the campaign base into all seven shock modules), plus the
//     service-level telemetry behind GET /v1/proxy.
//
// Run with: go run ./examples/proxy
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"disarcloud"
)

func main() {
	const seed = 20160628
	gen := disarcloud.ItalianCompanySpecs()[0]
	gen.NumContracts = 10
	portfolio, err := disarcloud.GeneratePortfolio(seed+1, gen)
	if err != nil {
		log.Fatal(err)
	}
	market := disarcloud.DefaultMarket(portfolio.MaxTerm())

	d, err := disarcloud.NewDeployer(seed)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	base := disarcloud.SimulationSpec{
		Portfolio:   portfolio,
		Fund:        disarcloud.TypicalItalianFund(5, market),
		Market:      market,
		Outer:       300,
		Inner:       20,
		Constraints: disarcloud.Constraints{TmaxSeconds: 3600, MaxNodes: 4, Epsilon: 0},
		MaxWorkers:  2,
		Seed:        seed,
	}

	// 1. The exact baseline: every outer scenario fully nested.
	run := func(spec disarcloud.SimulationSpec) *disarcloud.SimulationReport {
		id, err := svc.Submit(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := svc.Result(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	exact := run(base)
	fmt.Printf("exact nested:  BEL %12.2f   SCR %12.2f   (%d outer x %d inner)\n",
		exact.BEL, exact.SCR, base.Outer, base.Inner)

	// 2. The same valuation through the proxy tier: train on 64 extra
	// nested samples, serve the 300 evaluation scenarios through the fast
	// path, escalate only where the uncertainty band busts the 2% budget.
	proxied := base
	proxied.Proxy = &disarcloud.ProxySpec{
		TrainOuter:  64,
		ErrorBudget: 0.02,
		Model:       disarcloud.ProxyModelForest,
	}
	rep := run(proxied)
	st := rep.Proxy.Totals
	fmt.Printf("proxy cascade: BEL %12.2f   SCR %12.2f\n", rep.BEL, rep.SCR)
	fmt.Printf("  served %d paths: %d fast-path (%.1f%%), %d escalated, %d band busts\n",
		st.Evaluated, st.Proxied, 100*st.HitRate(), st.Escalated, st.BudgetBusts)
	fmt.Printf("  validation rel. MAE %.4f, realized escalation rel. MAE %.4f\n",
		st.ValidationRelMAE, st.RealizedRelMAE)
	fmt.Printf("  BEL deviation from exact: %.4f%% (budget %.0f%%)\n",
		100*math.Abs(rep.BEL-exact.BEL)/exact.BEL, 100*rep.Proxy.ErrorBudget)

	// 3. A standard-formula campaign entirely through the proxy: the spec
	// on the base propagates into every shock module.
	cid, err := svc.SubmitCampaign(ctx, disarcloud.CampaignSpec{Base: proxied})
	if err != nil {
		log.Fatal(err)
	}
	camp, err := svc.CampaignResult(ctx, cid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproxied campaign: base BEL %.2f, BSCR %.2f over %d modules\n",
		camp.BaseBEL, camp.SCR.BSCR, len(camp.Modules))

	tele := svc.ProxyStatus()
	fmt.Printf("service telemetry (GET /v1/proxy): %d proxied jobs, hit rate %.1f%%, %d paths served\n",
		tele.Jobs, 100*tele.HitRate, tele.Totals.Evaluated)
}
