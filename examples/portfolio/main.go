// Portfolio valuation: the actuarial heart of DISAR without the cloud layer
// — value the three Italian-style books with full nested Monte Carlo,
// compare against the LSMC acceleration (Section II of the paper), and show
// the distributed grid matching the sequential result bit for bit.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"disarcloud/internal/alm"
	"disarcloud/internal/eeb"
	"disarcloud/internal/finmath"
	"disarcloud/internal/fund"
	"disarcloud/internal/grid"
	"disarcloud/internal/policy"
	"disarcloud/internal/stochastic"
)

func market(horizon int) stochastic.Config {
	return stochastic.Config{
		Horizon:      horizon,
		StepsPerYear: 1,
		Rate: stochastic.VasicekParams{
			R0: 0.015, Speed: 0.25, MeanP: 0.03, MeanQ: 0.025, Sigma: 0.009,
		},
		Equities: []stochastic.GBMParams{{S0: 100, Mu: 0.06, Sigma: 0.18}},
		Credit:   stochastic.CIRParams{L0: 0.008, Speed: 0.5, Mean: 0.012, Sigma: 0.03},
	}
}

func main() {
	rng := finmath.NewRNG(2016)
	for _, spec := range policy.ItalianCompanySpecs() {
		spec.NumContracts = 10 // scaled down so the example runs in seconds
		p, err := policy.Generate(rng.Split(), spec)
		if err != nil {
			log.Fatal(err)
		}
		m := market(spec.MaxTerm)
		fundCfg := fund.TypicalItalianFund(5, m)
		block := &eeb.Block{
			ID: p.Name + "/B", Type: eeb.ALMValuation, Portfolio: p,
			Fund: fundCfg, Market: m, Outer: 400, Inner: 25,
		}
		v, err := alm.NewValuer(block, 99)
		if err != nil {
			log.Fatal(err)
		}

		t0 := time.Now()
		nested, err := v.ValueNested()
		if err != nil {
			log.Fatal(err)
		}
		tNested := time.Since(t0)

		t0 = time.Now()
		lsmc, err := v.ValueLSMC(alm.LSMCSpec{CalibOuter: 120, CalibInner: 25, Degree: 2})
		if err != nil {
			log.Fatal(err)
		}
		tLSMC := time.Since(t0)

		// The same block distributed over 8 in-process workers must give
		// the identical answer (data-separation correctness).
		blocks, err := eeb.SplitPortfolio(p, fundCfg, m, eeb.SplitSpec{Outer: 400, Inner: 25})
		if err != nil {
			log.Fatal(err)
		}
		master := &grid.Master{Workers: 8, Seed: 99}
		dist, err := master.Run(context.Background(), blocks)
		if err != nil {
			log.Fatal(err)
		}
		var distBEL float64
		for _, r := range dist {
			distBEL += r.BEL
		}

		fmt.Printf("portfolio %-14s  policies %6d  max term %2dy\n",
			p.Name, p.TotalPolicies(), p.MaxTerm())
		fmt.Printf("  nested MC : BEL %12.0f  SCR %11.0f  (+-%0.0f, %s)\n",
			nested.BEL, nested.SCR, nested.StdErr, tNested.Round(time.Millisecond))
		fmt.Printf("  LSMC      : BEL %12.0f  SCR %11.0f  (%s, %.1fx faster)\n",
			lsmc.BEL, lsmc.SCR, tLSMC.Round(time.Millisecond),
			float64(tNested)/float64(tLSMC))
		fmt.Printf("  8-worker distributed BEL %12.0f (== sequential: %v)\n\n",
			distBEL, distBEL == nested.BEL)
	}
}
