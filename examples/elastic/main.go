// Elastic: the worker pool breathing under a bursty campaign workload. The
// same three Solvency II stress campaigns (24 jobs) are pushed at a small
// service twice: once on a fixed two-worker pool, once with the elastic
// controller allowed to grow the pool to eight and shrink it back when the
// burst drains. The valuation numbers are identical either way — what the
// control plane buys is latency: the elastic run's p95 job latency should
// come out well below the fixed pool's.
package main

import (
	"fmt"
	"log"

	"disarcloud/internal/experiments"
)

func main() {
	const initialWorkers, maxWorkers = 2, 8
	fmt.Printf("bursty workload: %d campaigns x 8 jobs, pool %d fixed vs %d..%d elastic\n\n",
		experiments.BurstCampaigns, initialWorkers, initialWorkers, maxWorkers)

	cmp, err := experiments.RunElasticComparison(2016, initialWorkers, maxWorkers)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pool      jobs   p50        p95        max        wall       peak workers  decisions")
	row := func(name string, s experiments.PoolRunStats) {
		fmt.Printf("%-8s  %4d   %-9s  %-9s  %-9s  %-9s  %12d  %9d\n",
			name, s.Jobs, s.P50.Round(1e6), s.P95.Round(1e6), s.Max.Round(1e6),
			s.Wall.Round(1e6), s.PeakWorkers, s.Decisions)
	}
	row("fixed", cmp.Fixed)
	row("elastic", cmp.Elastic)

	fmt.Println("\nscaling trace (the pool breathing):")
	for _, ev := range cmp.Events {
		fmt.Printf("  %-8s  %d -> %d workers  (queued %d, running %d)\n",
			ev.Reason, ev.From, ev.Target, ev.Signals.Queued, ev.Signals.InFlight)
	}
	if len(cmp.Events) == 0 {
		fmt.Println("  (no decisions — workload too small to trigger the controller)")
	}

	speedup := float64(cmp.Fixed.P95) / float64(cmp.Elastic.P95)
	fmt.Printf("\np95 latency: fixed %s vs elastic %s (%.1fx)\n",
		cmp.Fixed.P95.Round(1e6), cmp.Elastic.P95.Round(1e6), speedup)
}
