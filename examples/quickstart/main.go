// Quickstart: the smallest end-to-end session with the public API — build a
// portfolio, let the ML provisioner pick a cloud deploy under a deadline,
// run the real distributed valuation, and print the Solvency II numbers
// next to the cloud-side record.
package main

import (
	"context"
	"fmt"
	"log"

	"disarcloud"
)

func main() {
	// A deployer owns the knowledge base, the six prediction models and the
	// (simulated) EC2 provider. The seed makes the whole session
	// reproducible.
	d, err := disarcloud.NewDeployer(42)
	if err != nil {
		log.Fatal(err)
	}

	// A small savings-heavy Italian portfolio.
	spec := disarcloud.ItalianCompanySpecs()[0]
	spec.NumContracts = 12
	portfolio, err := disarcloud.GeneratePortfolio(7, spec)
	if err != nil {
		log.Fatal(err)
	}
	market := disarcloud.DefaultMarket(portfolio.MaxTerm())

	// The service front door: jobs are submitted with a context and run on
	// a bounded worker pool; here a single job is submitted and awaited.
	svc, err := disarcloud.NewService(d)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	ctx := context.Background()
	id, err := svc.Submit(ctx, disarcloud.SimulationSpec{
		Portfolio: portfolio,
		Fund:      disarcloud.TypicalItalianFund(5, market),
		Market:    market,
		Outer:     100, // n_P (paper uses 1,000-100,000)
		Inner:     10,  // n_Q (paper uses 50 with LSMC)
		Constraints: disarcloud.Constraints{
			TmaxSeconds: 900, // the Solvency II deadline
			MaxNodes:    8,
			Epsilon:     0.05,
		},
		MaxWorkers: 8,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := svc.Result(ctx, id)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("portfolio: %d contracts, %d policies\n",
		portfolio.NumRepresentative(), portfolio.TotalPolicies())
	fmt.Printf("best-estimate liability: %.0f\n", report.BEL)
	fmt.Printf("SCR (99.5%% VaR, 1y):     %.0f\n", report.SCR)
	fmt.Printf("deploy: %s\n", report.Deploy.Choice.String())
	fmt.Printf("simulated execution: %.0fs, cost %.3f$ (billed %.2f$)\n",
		report.Deploy.ActualSeconds, report.Deploy.ProRataUSD, report.Deploy.BilledUSD)
	if report.Deploy.Bootstrap {
		fmt.Println("note: first runs bootstrap the knowledge base with random configs;")
		fmt.Println("      rerun a few times (or use examples/autoscale) to see ML selection.")
	}
}
