// Autoscale: the self-optimizing loop in action. A simulation campaign runs
// through the deployer; every run's measured time enters the knowledge base
// and retrains the six prediction models, so the relative prediction error
// falls and the selected configurations get cheaper as the system learns —
// the paper's core claim ("every computation ... is used as well to give
// better predictions for later deploys").
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"disarcloud/internal/core"
	"disarcloud/internal/experiments"
	"disarcloud/internal/provision"
)

func main() {
	campaign, err := experiments.NewCampaign(2016, core.WithRetrainEvery(5))
	if err != nil {
		log.Fatal(err)
	}
	d := campaign.Deployer

	// Early manual training phase: cycle every architecture a few times.
	ctx := context.Background()
	if err := d.Bootstrap(ctx, campaign.Workloads, provision.MinSamplesToTrain, 8); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap done: %d samples in the knowledge base\n\n", d.KB().Len())
	fmt.Println("batch  KB size  mean |pred-real|/real  mean cost$  explored")

	const batches, perBatch = 10, 30
	for b := 0; b < batches; b++ {
		var relErr, cost float64
		var mlRuns, explored int
		for i := 0; i < perBatch; i++ {
			f := campaign.Workloads[(b*perBatch+i)%len(campaign.Workloads)]
			rep, err := d.Deploy(ctx, f, provision.Constraints{
				TmaxSeconds: 900, MaxNodes: 8, Epsilon: 0.15,
			})
			if err != nil {
				log.Fatal(err)
			}
			cost += rep.ProRataUSD
			if rep.Choice.Explored {
				explored++
			}
			if !rep.Bootstrap && rep.PredictedSeconds > 0 {
				relErr += math.Abs(rep.PredictedSeconds-rep.ActualSeconds) / rep.ActualSeconds
				mlRuns++
			}
		}
		if mlRuns == 0 {
			mlRuns = 1
		}
		fmt.Printf("%5d  %7d  %20.1f%%  %10.3f  %8d\n",
			b+1, d.KB().Len(), 100*relErr/float64(mlRuns), cost/perBatch, explored)
	}

	fmt.Println("\nthe error column shrinks as the knowledge base grows — the")
	fmt.Println("self-optimizing loop is learning from its own useful work.")
}
