// Costopt reproduces the closing experiment of the paper's Section IV and
// then walks the cost-aware provisioning plane built on top of it.
//
// Part 1 (the paper): for a large valuation, force the deploy onto (a) the
// higher-end VM and (b) the most cost-effective one, and compare with the
// ML-selected configuration. The paper reports the ML choice cutting cost
// by up to 54% versus the high-end machine while cutting execution time by
// up to 48% versus the cost-effective one — a point between the two
// extremes that only configuration exploration finds.
//
// Part 2 (the cost plane): the same workload priced through the Pareto
// selector — the cost-vs-deadline frontier across purchasing tiers, an
// on-demand versus spot-enabled deploy of the same job, and a budget cap
// tight enough to be rejected up front with the cheapest feasible figure.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"disarcloud/internal/cloud"
	"disarcloud/internal/core"
	"disarcloud/internal/experiments"
	"disarcloud/internal/provision"
)

func main() {
	campaign, err := experiments.NewCampaign(2016, core.WithRetrainEvery(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("building a knowledge base through the self-optimizing loop (600 runs)...")
	if err := campaign.BuildKB(600); err != nil {
		log.Fatal(err)
	}

	// The largest EEB of the campaign plays the "large configuration".
	f := campaign.Workloads[0]
	for _, w := range campaign.Workloads {
		if w.Complexity() > f.Complexity() {
			f = w
		}
	}
	fmt.Printf("workload: %d contracts, %dy horizon, %d assets, %d risk factors, n_P=%d, n_Q=%d\n\n",
		f.RepresentativeContracts, f.MaxHorizon, f.FundAssets, f.RiskFactors,
		f.OuterPaths, f.InnerPaths)

	res, err := experiments.EvaluateFinalComparison(
		campaign.Deployer.Selector(), cloud.DefaultPerfModel(), f,
		provision.Constraints{TmaxSeconds: 0, MaxNodes: 8, Epsilon: 0})
	if err != nil {
		log.Fatal(err)
	}
	res.PrintFinal(os.Stdout)

	// --- Part 2: the cost-aware provisioning plane. -----------------------

	ctx := context.Background()
	sel := campaign.Deployer.Selector()
	cons := provision.Constraints{
		TmaxSeconds: 3600, MaxNodes: 8, Epsilon: 0, Tiers: cloud.AllTiers(),
	}

	// The Pareto frontier across every (type, nodes, tier) candidate inside
	// the deadline: each successive point buys strictly more speed for
	// strictly more money. Algorithm 1 picks its cheapest point.
	cands, err := sel.Candidates(ctx, f, cons)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncost-vs-deadline Pareto frontier (Tmax %.0fs, all tiers, %d candidates):\n",
		cons.TmaxSeconds, len(cands))
	for i, ch := range provision.Frontier(cands) {
		fmt.Printf("  %d. %-40s %8.1fs  %7.2f$ billed\n",
			i+1, ch.String(), ch.PredictedSeconds, ch.PredictedBilledUSD)
	}

	// The same job deployed twice: once on-demand only, once with the spot
	// market open. Tier choice moves the bill, never the valuation.
	fmt.Println("\ndeploying the workload on each fleet:")
	for _, fleet := range []struct {
		name  string
		tiers []cloud.Tier
	}{
		{"on-demand", nil},
		{"spot-enabled", cloud.AllTiers()},
	} {
		c := cons
		c.Tiers = fleet.tiers
		rep, err := campaign.Deployer.Deploy(ctx, f, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %-40s %8.1fs  %6.2f$ billed (on-demand equiv %.2f$, %d revocations)\n",
			fleet.name, rep.Choice.String(), rep.ActualSeconds,
			rep.BilledUSD, rep.OnDemandUSD, rep.Revocations)
	}

	// A budget below the cheapest feasible deploy is rejected up front; the
	// error names the figure to resubmit with.
	tight := cons
	tight.MaxCost = 0.05
	_, err = campaign.Deployer.Deploy(ctx, f, tight)
	var be *core.BudgetError
	if !errors.As(err, &be) {
		log.Fatalf("expected a budget rejection, got %v", err)
	}
	fmt.Printf("\nbudget %.2f$ rejected up front: cheapest feasible deploy costs %.2f$\n",
		be.MaxCostUSD, be.CheapestUSD)
	ok := cons
	ok.MaxCost = be.CheapestUSD * 1.5
	rep, err := campaign.Deployer.Deploy(ctx, f, ok)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget %.2f$ accepted: %s billed %.2f$\n",
		ok.MaxCost, rep.Choice.String(), rep.BilledUSD)
}
