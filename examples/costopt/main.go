// Costopt reproduces the closing experiment of the paper's Section IV: for
// a large valuation, force the deploy onto (a) the higher-end VM and (b)
// the most cost-effective one, and compare with the ML-selected
// configuration. The paper reports the ML choice cutting cost by up to 54%
// versus the high-end machine while cutting execution time by up to 48%
// versus the cost-effective one — a point between the two extremes that
// only configuration exploration finds.
package main

import (
	"fmt"
	"log"
	"os"

	"disarcloud/internal/cloud"
	"disarcloud/internal/core"
	"disarcloud/internal/experiments"
	"disarcloud/internal/provision"
)

func main() {
	campaign, err := experiments.NewCampaign(2016, core.WithRetrainEvery(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("building a knowledge base through the self-optimizing loop (600 runs)...")
	if err := campaign.BuildKB(600); err != nil {
		log.Fatal(err)
	}

	// The largest EEB of the campaign plays the "large configuration".
	f := campaign.Workloads[0]
	for _, w := range campaign.Workloads {
		if w.Complexity() > f.Complexity() {
			f = w
		}
	}
	fmt.Printf("workload: %d contracts, %dy horizon, %d assets, %d risk factors, n_P=%d, n_Q=%d\n\n",
		f.RepresentativeContracts, f.MaxHorizon, f.FundAssets, f.RiskFactors,
		f.OuterPaths, f.InnerPaths)

	// A binding deadline (75% of the cheapest machine's time) forces the
	// money-vs-speed trade-off of the paper's comparison.
	res, err := experiments.EvaluateFinalComparison(
		campaign.Deployer.Selector(), cloud.DefaultPerfModel(), f,
		provision.Constraints{TmaxSeconds: 0, MaxNodes: 8, Epsilon: 0})
	if err != nil {
		log.Fatal(err)
	}
	res.PrintFinal(os.Stdout)
}
