package disarcloud_test

// Proxy-tier counterpart of the golden-file test: the SAME fixed-seed
// campaign routed through the LSMC proxy serving tier must land within a
// stated tolerance of the exact golden numbers — the uncertainty gate and
// the escalation cap are what keep a cheap model's campaign SCR honest. The
// proxied run is additionally required to be bit-reproducible, like the
// exact one.

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"

	"disarcloud"
)

// Proxied-campaign tolerances against testdata/golden_scr.json. BEL is the
// directly proxied quantity, so it inherits the 2% error budget below; the
// BSCR is a small difference of large valuations, which amplifies relative
// error — 15% keeps the test meaningful (a broken gate is off by integer
// factors) without flaking on quantile noise.
const (
	proxyGoldenBELTol  = 0.02
	proxyGoldenBSCRTol = 0.15
)

func proxyGoldenRun(t *testing.T) disarcloud.CampaignReport {
	t.Helper()
	const seed = 20160628
	d, err := disarcloud.NewDeployer(seed)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	p, err := disarcloud.GeneratePortfolio(seed+1, func() disarcloud.GeneratorSpec {
		g := disarcloud.ItalianCompanySpecs()[0]
		g.NumContracts = 10
		return g
	}())
	if err != nil {
		t.Fatal(err)
	}
	market := disarcloud.DefaultMarket(p.MaxTerm())
	ctx := context.Background()
	id, err := svc.SubmitCampaign(ctx, disarcloud.CampaignSpec{
		Base: disarcloud.SimulationSpec{
			Portfolio:   p,
			Fund:        disarcloud.TypicalItalianFund(5, market),
			Market:      market,
			Outer:       60,
			Inner:       5,
			Constraints: disarcloud.Constraints{TmaxSeconds: 3600, MaxNodes: 4, Epsilon: 0},
			MaxWorkers:  2,
			Seed:        seed,
			Proxy: &disarcloud.ProxySpec{
				TrainOuter:  32,
				ErrorBudget: proxyGoldenBELTol,
				Model:       disarcloud.ProxyModelForest,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.CampaignResult(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return *rep
}

func TestProxyCampaignWithinGoldenTolerance(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (run TestGoldenSCRCampaign -update to create it): %v", err)
	}
	var want goldenSCR
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("decode golden file: %v", err)
	}

	got := proxyGoldenRun(t)
	if relDev := math.Abs(got.BaseBEL-want.BaseBEL) / math.Abs(want.BaseBEL); relDev > proxyGoldenBELTol {
		t.Errorf("proxied base BEL off the golden value by %.4f (budget %v): got %v, want %v",
			relDev, proxyGoldenBELTol, got.BaseBEL, want.BaseBEL)
	}
	if relDev := math.Abs(got.SCR.BSCR-want.SCR.BSCR) / math.Abs(want.SCR.BSCR); relDev > proxyGoldenBSCRTol {
		t.Errorf("proxied BSCR off the golden value by %.4f (tolerance %v): got %v, want %v",
			relDev, proxyGoldenBSCRTol, got.SCR.BSCR, want.SCR.BSCR)
	}
	if len(got.Modules) != len(want.Modules) {
		t.Errorf("proxied campaign ran %d modules, golden has %d", len(got.Modules), len(want.Modules))
	}
}

func TestProxyCampaignRerunIsBitIdentical(t *testing.T) {
	a, b := proxyGoldenRun(t), proxyGoldenRun(t)
	if a.BaseBEL != b.BaseBEL || a.SCR != b.SCR {
		t.Fatalf("same-seed proxied reruns disagree:\nBEL %v vs %v\nSCR %+v vs %+v",
			a.BaseBEL, b.BaseBEL, a.SCR, b.SCR)
	}
	for i := range a.Modules {
		if a.Modules[i].DeltaBEL != b.Modules[i].DeltaBEL {
			t.Fatalf("module %s differs across proxied reruns: %v vs %v",
				a.Modules[i].Module, a.Modules[i].DeltaBEL, b.Modules[i].DeltaBEL)
		}
	}
}
