package disarcloud_test

// Clustered golden tests: the pinned Solvency II campaign of
// disarcloud_golden_test.go, executed through a real multi-process-style
// cluster (coordinator + N TCP workers on the loopback), must reproduce
// testdata/golden_scr.json bit for bit — on one worker, on four, and with a
// worker killed mid-campaign so the re-slice fault path runs. Distribution,
// transport and failure recovery reorder WHEN paths are computed but must
// never change WHAT they compute.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"disarcloud"
)

// startGoldenCluster brings up a coordinator behind a real TCP listener and
// n workers joined to it, and waits for full membership.
func startGoldenCluster(t *testing.T, n int) (*disarcloud.ClusterCoordinator, []*disarcloud.ClusterWorker) {
	t.Helper()
	coord := disarcloud.NewClusterCoordinator(disarcloud.ClusterConfig{
		HeartbeatEvery: 100 * time.Millisecond,
	})
	mux := http.NewServeMux()
	coord.Routes(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	workers := make([]*disarcloud.ClusterWorker, n)
	for i := range workers {
		w := disarcloud.NewClusterWorker(fmt.Sprintf("golden-%d", i), 2)
		if err := w.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if err := w.Join(context.Background(), srv.URL); err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		t.Cleanup(w.Close)
	}
	deadline := time.Now().Add(5 * time.Second)
	for coord.Status().LiveWorkers < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers joined", coord.Status().LiveWorkers, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return coord, workers
}

// goldenClusterRun executes the pinned campaign with the cluster as the
// deployer's block runner. With killOne set, one worker is closed as soon
// as slices start flowing, forcing dead-worker detection and re-slicing
// mid-campaign.
func goldenClusterRun(t *testing.T, n int, killOne bool) goldenSCR {
	t.Helper()
	coord, workers := startGoldenCluster(t, n)
	if killOne {
		go func() {
			deadline := time.Now().Add(10 * time.Second)
			for coord.Status().SlicesDispatched == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			workers[0].Close()
		}()
	}
	d, err := disarcloud.NewDeployer(goldenSeed, disarcloud.WithBlockRunner(coord))
	if err != nil {
		t.Fatal(err)
	}
	got := goldenCampaign(t, d)
	st := coord.Status()
	if st.SlicesDispatched == 0 {
		t.Fatal("golden campaign ran without shipping a single slice to the cluster")
	}
	t.Logf("cluster n=%d kill=%v: %d slices, %d failures, %d reslices, %d local fallbacks",
		n, killOne, st.SlicesDispatched, st.SliceFailures, st.Reslices, st.LocalFallbacks)
	return got
}

func TestGoldenSCRClusterOneWorker(t *testing.T) {
	compareGolden(t, goldenClusterRun(t, 1, false), readGolden(t))
}

func TestGoldenSCRClusterFourWorkers(t *testing.T) {
	compareGolden(t, goldenClusterRun(t, 4, false), readGolden(t))
}

func TestGoldenSCRClusterSurvivesWorkerKill(t *testing.T) {
	compareGolden(t, goldenClusterRun(t, 4, true), readGolden(t))
}
