package disarcloud_test

// Clustered golden tests: the pinned Solvency II campaign of
// disarcloud_golden_test.go, executed through a real multi-process-style
// cluster (coordinator + N TCP workers on the loopback), must reproduce
// testdata/golden_scr.json bit for bit — on one worker, on four, and with a
// worker killed mid-campaign so the re-slice fault path runs. Distribution,
// transport and failure recovery reorder WHEN paths are computed but must
// never change WHAT they compute.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"disarcloud"
)

// startGoldenCluster brings up a coordinator behind a real TCP listener and
// n workers joined to it, and waits for full membership.
func startGoldenCluster(t *testing.T, n int) (*disarcloud.ClusterCoordinator, []*disarcloud.ClusterWorker) {
	t.Helper()
	coord := disarcloud.NewClusterCoordinator(disarcloud.ClusterConfig{
		HeartbeatEvery: 100 * time.Millisecond,
	})
	mux := http.NewServeMux()
	coord.Routes(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	workers := make([]*disarcloud.ClusterWorker, n)
	for i := range workers {
		w := disarcloud.NewClusterWorker(fmt.Sprintf("golden-%d", i), 2)
		if err := w.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if err := w.Join(context.Background(), srv.URL); err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		t.Cleanup(w.Close)
	}
	deadline := time.Now().Add(5 * time.Second)
	for coord.Status().LiveWorkers < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers joined", coord.Status().LiveWorkers, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return coord, workers
}

// goldenClusterRun executes the pinned campaign with the cluster as the
// deployer's block runner. disrupt selects a mid-campaign fault injected as
// soon as slices start flowing: "kill" closes a worker process (dead-worker
// detection and re-slicing), "revoke" reclaims its spot instance while the
// process keeps running (in-flight results discarded and re-sliced).
func goldenClusterRun(t *testing.T, n int, disrupt string) goldenSCR {
	t.Helper()
	coord, workers := startGoldenCluster(t, n)
	if disrupt != "" {
		go func() {
			deadline := time.Now().Add(10 * time.Second)
			for coord.Status().SlicesDispatched == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			switch disrupt {
			case "kill":
				workers[0].Close()
			case "revoke":
				if !coord.Revoke("golden-0") {
					t.Error("Revoke(golden-0) found no live member")
				}
			}
		}()
	}
	d, err := disarcloud.NewDeployer(goldenSeed, disarcloud.WithBlockRunner(coord))
	if err != nil {
		t.Fatal(err)
	}
	got := goldenCampaign(t, d)
	st := coord.Status()
	if st.SlicesDispatched == 0 {
		t.Fatal("golden campaign ran without shipping a single slice to the cluster")
	}
	if disrupt == "revoke" && st.Revocations != 1 {
		t.Fatalf("revocation counter %d, want 1", st.Revocations)
	}
	t.Logf("cluster n=%d disrupt=%q: %d slices, %d failures, %d reslices, %d revocations, %d local fallbacks",
		n, disrupt, st.SlicesDispatched, st.SliceFailures, st.Reslices, st.Revocations, st.LocalFallbacks)
	return got
}

func TestGoldenSCRClusterOneWorker(t *testing.T) {
	compareGolden(t, goldenClusterRun(t, 1, ""), readGolden(t))
}

func TestGoldenSCRClusterFourWorkers(t *testing.T) {
	compareGolden(t, goldenClusterRun(t, 4, ""), readGolden(t))
}

func TestGoldenSCRClusterSurvivesWorkerKill(t *testing.T) {
	compareGolden(t, goldenClusterRun(t, 4, "kill"), readGolden(t))
}

func TestGoldenSCRClusterSurvivesRevocation(t *testing.T) {
	compareGolden(t, goldenClusterRun(t, 4, "revoke"), readGolden(t))
}
