// Package disarcloud is a from-scratch reproduction of "Machine
// Learning-Based Elastic Cloud Resource Provisioning in the Solvency II
// Framework" (La Rizza et al., ICDCS 2016): a DISAR-style distributed
// Solvency II valuation engine (nested Monte Carlo + LSMC over
// profit-sharing life portfolios), a simulated EC2/Starcluster substrate,
// six Weka-style regression learners, and the paper's contribution — an
// ML-based transparent deploy system organised as a self-optimizing loop
// that picks the cheapest cloud configuration meeting the regulatory
// deadline (Algorithm 1).
//
// This package is the public API: it re-exports the stable surface of the
// internal packages. The primary entry point is the valuation Service — a
// long-lived front door that accepts concurrent job submissions over one
// shared self-optimizing deployer:
//
//	ctx := context.Background()
//	d, _ := disarcloud.NewDeployer(42)
//	svc, _ := disarcloud.NewService(d, disarcloud.WithWorkers(4))
//	defer svc.Close()
//	p, _ := disarcloud.GeneratePortfolio(7, disarcloud.ItalianCompanySpecs()[0])
//	market := disarcloud.DefaultMarket(p.MaxTerm())
//	id, _ := svc.Submit(ctx, disarcloud.SimulationSpec{
//		Portfolio:   p,
//		Fund:        disarcloud.TypicalItalianFund(6, market),
//		Market:      market,
//		Outer:       1000,
//		Inner:       50,
//		Constraints: disarcloud.Constraints{TmaxSeconds: 900, MaxNodes: 8, Epsilon: 0.05},
//		Seed:        42,
//	})
//	rep, _ := svc.Result(ctx, id)
//	fmt.Println(rep.SCR, rep.Deploy.Choice)
//
// Single valuations can still call Deployer.RunSimulation(ctx, spec)
// directly; the Service adds deadline-aware (earliest-deadline-first)
// queuing, bounded concurrency, cancellation, per-job progress streams and
// status inspection on top. With WithElastic the worker pool autoscales
// from queue and predictor signals (see internal/elastic), and with
// WithAdmissionControl submissions whose predicted completion would bust
// their own deadline are rejected up front. cmd/disard serves the same API
// over HTTP/JSON.
//
// See DESIGN.md for the system architecture (job lifecycle, concurrency
// model, context semantics) and EXPERIMENTS.md for the paper-versus-
// measured record of every table and figure.
package disarcloud

import (
	"disarcloud/internal/actuarial"
	"disarcloud/internal/alm"
	"disarcloud/internal/cloud"
	"disarcloud/internal/cluster"
	"disarcloud/internal/core"
	"disarcloud/internal/eeb"
	"disarcloud/internal/elastic"
	"disarcloud/internal/finmath"
	"disarcloud/internal/forecast"
	"disarcloud/internal/fund"
	"disarcloud/internal/grid"
	"disarcloud/internal/kb"
	"disarcloud/internal/loadgen"
	"disarcloud/internal/policy"
	"disarcloud/internal/provision"
	"disarcloud/internal/proxyval"
	"disarcloud/internal/rl"
	"disarcloud/internal/stochastic"
	"disarcloud/internal/stress"
	"disarcloud/internal/verify"
)

// Liability-side types.
type (
	// Portfolio is a book of representative profit-sharing contracts.
	Portfolio = policy.Portfolio
	// Contract is one representative contract (Eqs. 1-5 mechanics).
	Contract = policy.Contract
	// ContractKind enumerates the supported contract types.
	ContractKind = policy.Kind
	// GeneratorSpec parameterises the synthetic portfolio generator.
	GeneratorSpec = policy.GeneratorSpec
	// Gender selects the mortality table.
	Gender = actuarial.Gender
)

// Contract kinds.
const (
	PureEndowment = policy.PureEndowment
	Endowment     = policy.Endowment
	TermInsurance = policy.TermInsurance
	WholeLife     = policy.WholeLife
	Annuity       = policy.Annuity
)

// Genders.
const (
	Male   = actuarial.Male
	Female = actuarial.Female
)

// Market- and fund-side types.
type (
	// MarketConfig is the joint risk-driver model (Vasicek short rate, GBM
	// equities/currencies, CIR credit intensity).
	MarketConfig = stochastic.Config
	// VasicekParams parameterises the short-rate model.
	VasicekParams = stochastic.VasicekParams
	// GBMParams parameterises an equity or currency index.
	GBMParams = stochastic.GBMParams
	// CIRParams parameterises the credit-intensity process.
	CIRParams = stochastic.CIRParams
	// RiskMatrix is the dense matrix type of the correlation structure.
	RiskMatrix = finmath.Matrix
	// FundConfig describes a segregated fund and its smoothing strategy.
	FundConfig = fund.Config
	// ValuationResult carries BEL, SCR and the one-year value distribution.
	ValuationResult = alm.Result
)

// Cloud-side and provisioning types.
type (
	// InstanceType is one virtualized architecture of the EC2 catalog.
	InstanceType = cloud.InstanceType
	// PerfModel is the calibrated ground-truth performance model.
	PerfModel = cloud.PerfModel
	// CharacteristicParams are the workload features the ML models use.
	CharacteristicParams = eeb.CharacteristicParams
	// Constraints are the Algorithm 1 inputs (Tmax, node bound, epsilon).
	Constraints = provision.Constraints
	// Choice is a selected deploy configuration.
	Choice = provision.Choice
	// KnowledgeBase stores (architecture, nodes, params) -> seconds samples.
	KnowledgeBase = kb.KB
	// Sample is one knowledge-base record.
	Sample = kb.Sample
	// Deployer runs the select -> execute -> record -> retrain loop.
	Deployer = core.Deployer
	// Option customises a Deployer.
	Option = core.Option
	// Report describes one completed deploy.
	Report = core.Report
	// SimulationSpec is a complete valuation request.
	SimulationSpec = core.SimulationSpec
	// SimulationReport is the end-to-end outcome (SCR + deploy record).
	SimulationReport = core.SimulationReport
)

// Service-side types: the concurrent job-submission API.
type (
	// Service is the valuation front door: concurrent job submission over a
	// bounded worker pool sharing one self-optimizing Deployer.
	Service = core.Service
	// ServiceOption customises a Service.
	ServiceOption = core.ServiceOption
	// JobID identifies a submitted valuation job.
	JobID = core.JobID
	// JobStatus is a job's lifecycle state.
	JobStatus = core.JobStatus
	// JobSnapshot is a point-in-time view of a job.
	JobSnapshot = core.JobSnapshot
	// Progress is one grid monitoring event (outer paths completed).
	Progress = grid.Progress
)

// Job lifecycle states.
const (
	JobQueued   = core.JobQueued
	JobRunning  = core.JobRunning
	JobDone     = core.JobDone
	JobFailed   = core.JobFailed
	JobCanceled = core.JobCanceled
)

// Stress-campaign types: the Solvency II standard-formula battery of shocked
// revaluations run as one campaign over the service's worker pool.
type (
	// CampaignSpec fans one base valuation into shocked revaluations.
	CampaignSpec = core.CampaignSpec
	// CampaignID identifies a submitted stress campaign.
	CampaignID = core.CampaignID
	// CampaignSnapshot is a point-in-time view of a campaign.
	CampaignSnapshot = core.CampaignSnapshot
	// CampaignReport carries per-module delta-BEL and the aggregated SCR.
	CampaignReport = core.CampaignReport
	// ModuleResult is the outcome of one shocked revaluation.
	ModuleResult = core.ModuleResult
	// StressModule names one standard-formula stress module.
	StressModule = stress.Module
	// Shock is one stress module: a market transform plus a biometric
	// scaling.
	Shock = stress.Shock
	// SCRBreakdown is the standard-formula aggregation of module charges.
	SCRBreakdown = stress.SCR
	// ScenarioTransform is an exact pathwise market shock.
	ScenarioTransform = stochastic.Transform
	// ScenarioSet is a memoized scenario pool shared across a campaign.
	ScenarioSet = stochastic.Set
	// Biometric scales the decrement assumptions (life stresses).
	Biometric = eeb.Biometric
)

// Standard-formula stress modules.
const (
	ModuleInterestUp   = stress.InterestUp
	ModuleInterestDown = stress.InterestDown
	ModuleEquity       = stress.Equity
	ModuleCurrency     = stress.Currency
	ModuleSpread       = stress.Spread
	ModuleMortality    = stress.Mortality
	ModuleLapse        = stress.Lapse
	ModuleLongevity    = stress.Longevity
)

// LSMC proxy serving tier: uncertainty-gated fast-path valuation with Monte
// Carlo escalation. Attaching a ProxySpec to a SimulationSpec (or a campaign
// Base) routes every block through train -> gate -> escalate instead of the
// plain nested pipeline.
type (
	// ProxySpec configures the proxy tier of a job (training-sample size,
	// error budget, escalation cap, model family).
	ProxySpec = core.ProxySpec
	// ProxyReport is the serving telemetry of one proxied job.
	ProxyReport = core.ProxyReport
	// ProxyStats is the per-block (and merged) serving record: sample sizes,
	// validation error, proxy-vs-escalated counts, realized escalation error.
	ProxyStats = proxyval.Stats
	// ProxyTelemetry is the service-level aggregate over all proxied jobs.
	ProxyTelemetry = core.ProxyTelemetry
)

// Proxy model families.
const (
	ProxyModelForest = proxyval.ModelForest
	ProxyModelPoly   = proxyval.ModelPoly
	ProxyModelLinear = proxyval.ModelLinear
	ProxyModelMLP    = proxyval.ModelMLP
)

// ProxyModels lists the supported proxy model families.
var ProxyModels = proxyval.Models

// MinProxyTrainOuter is the smallest usable proxy training sample (enough
// to leave both a fit set and a non-trivial held-out validation set).
const MinProxyTrainOuter = proxyval.MinTrainOuter

// Stress-campaign construction.
var (
	// StandardFormulaShocks returns the seven standard-formula modules.
	StandardFormulaShocks = stress.StandardFormula
	// LongevityShock returns the optional longevity module.
	LongevityShock = stress.LongevityShock
	// AggregateSCR combines per-module charges with the regulatory
	// correlation matrices.
	AggregateSCR = stress.Aggregate
	// ErrUnknownCampaign is returned for a CampaignID the service does not
	// know.
	ErrUnknownCampaign = core.ErrUnknownCampaign
)

// Elastic control plane: the autoscaling controller that grows and shrinks
// the service's worker pool from load and predictor signals, plus the
// deadline-aware admission control of the EDF scheduler.
type (
	// ElasticConfig parameterises the autoscaling controller (pool bounds,
	// pressure thresholds, cooldowns, hysteresis).
	ElasticConfig = elastic.Config
	// ElasticSignals is one load observation the controller decides on.
	ElasticSignals = elastic.Signals
	// ScalingEvent is one autoscaler decision with the signals behind it.
	ScalingEvent = core.ScalingEvent
	// AutoscalerStatus is a point-in-time view of the control plane.
	AutoscalerStatus = core.AutoscalerStatus
	// RuntimeEstimator predicts a job's runtime for admission control.
	RuntimeEstimator = core.RuntimeEstimator
	// EstimatorFunc adapts a function to RuntimeEstimator.
	EstimatorFunc = core.EstimatorFunc
	// AdmissionError carries the numbers behind an admission rejection.
	AdmissionError = core.AdmissionError
)

// Proactive provisioning: the workload-forecasting subsystem that overlays
// the reactive controller with a feed-forward worker target (hybrid policy:
// max of the two), plus the seeded synthetic load-trace generators the
// forecast quality and scaling policies are evaluated on.
type (
	// ForecastConfig parameterises the forecasting subsystem (recorder
	// window, candidate family, headroom, reselection cadence).
	ForecastConfig = forecast.Config
	// ForecastStatus is a point-in-time view of the forecast subsystem.
	ForecastStatus = core.ForecastStatus
	// Forecaster is a univariate demand model (EWMA, Holt, Holt-Winters,
	// AR over internal/ml's ridge regression).
	Forecaster = forecast.Forecaster
	// ForecastScore is one candidate's rolling-backtest sMAPE.
	ForecastScore = forecast.Score
	// TickerFunc supplies the control loop's time source (tests inject a
	// manual channel for deterministic control-loop tests).
	TickerFunc = core.TickerFunc
	// TraceSpec parameterises one synthetic workload trace.
	TraceSpec = loadgen.Spec
	// TraceKind names a synthetic trace family.
	TraceKind = loadgen.Kind
)

// Synthetic trace families.
const (
	TraceDiurnal = loadgen.Diurnal
	TraceBursty  = loadgen.Bursty
	TraceRamp    = loadgen.Ramp
	TraceFlash   = loadgen.Flash
	TraceMixed   = loadgen.Mixed
	TraceWeekly  = loadgen.Weekly
)

// Forecasting and load generation.
var (
	// WithForecast enables proactive provisioning (requires WithElastic).
	WithForecast = core.WithForecast
	// WithControlTicker replaces the control loop's time source.
	WithControlTicker = core.WithControlTicker
	// GenerateTrace draws a trace's per-interval arrival counts,
	// deterministically in the spec's seed.
	GenerateTrace = loadgen.Generate
	// GenerateTraceWithRates also returns the underlying rate profile,
	// computed once.
	GenerateTraceWithRates = loadgen.GenerateWithRates
	// TraceRates returns a trace's deterministic rate profile.
	TraceRates = loadgen.Rates
	// TraceTotal sums a trace's arrivals.
	TraceTotal = loadgen.Total
	// TraceKindsAll lists every trace family.
	TraceKindsAll = loadgen.Kinds
)

// Policy verification: probabilistic model checking of the scaling
// policies. A VerifyRequest composes a policy configuration with a trace
// spec's Markov arrival model; VerifyPolicy builds the exact product chain
// and computes the SLA-violation probability, expected worker-seconds and
// expected resize churn by value iteration (see internal/verify for the
// state encoding and the soundness caveats of the service abstraction).
type (
	// VerifyRequest is one model-checking problem: policy + arrival model
	// + SLA, decoded from JSON by `disard -check`.
	VerifyRequest = verify.Request
	// VerifySLA is the bound being checked: P(queue >= QueueBound within
	// HorizonTicks) <= MaxProbability.
	VerifySLA = verify.SLA
	// VerifyReport is the verdict plus the exact computed properties.
	VerifyReport = verify.Report
	// VerifyProperties are the exact quantities value iteration computed.
	VerifyProperties = verify.Properties
	// VerifySweepSpec grids a base request over policy parameters.
	VerifySweepSpec = verify.SweepSpec
	// VerifySweepPoint is one sweep cell, flagged when Pareto-optimal on
	// (violation probability, expected worker-seconds).
	VerifySweepPoint = verify.SweepPoint
	// VerifyReplayStats summarises an empirical replay cross-validation.
	VerifyReplayStats = verify.ReplayStats
	// VerifyArrivalModel is a discretized Markov arrival process.
	VerifyArrivalModel = verify.ArrivalModel
	// ScalingPolicy is the pluggable decision layer of the elastic
	// control loop — the seam internal/verify model-checks.
	ScalingPolicy = core.ScalingPolicy
)

// Learned autoscaling policy (internal/rl): a tabular Q-learning policy
// trained offline against a deterministic simulator that replays loadgen
// traces through the scheduler's backlog dynamics, shipped as a versioned
// Q-table artifact, installed as the third built-in scaling policy with
// WithLearnedPolicy, and model-checked by the same verifier as the
// threshold policies (a learned VerifyRequest carries the qtable path).
type (
	// QTable is a trained learned-policy artifact: the training spec plus
	// the learned action values; its greedy Step is the policy.
	QTable = rl.Table
	// QTableSpec fixes a learned policy's discretization, action set,
	// reward weights and training hyperparameters.
	QTableSpec = rl.Spec
	// PolicySimResult is one deterministic policy-replay scorecard
	// (latency quantiles, worker-seconds, resizes, violations).
	PolicySimResult = rl.SimResult
	// ParameterizedPolicy is the optional ScalingPolicy interface that
	// surfaces hyperparameters through AutoscalerStatus.
	ParameterizedPolicy = core.ParameterizedPolicy
)

// QTableVersion is the Q-table artifact format this build reads and writes.
const QTableVersion = rl.TableVersion

var (
	// TrainQTable runs offline Q-learning for the spec; the same spec and
	// seed always produce a byte-identical table.
	TrainQTable = rl.Train
	// DefaultQTableSpec is the shipped training configuration.
	DefaultQTableSpec = rl.DefaultSpec
	// LoadQTable reads a Q-table artifact from disk (strict decode).
	LoadQTable = rl.LoadTableFile
	// DecodeQTable reads a serialized Q-table (strict decode).
	DecodeQTable = rl.DecodeTable
	// WithLearnedPolicy installs a trained Q-table as the control loop's
	// decision layer (requires WithElastic).
	WithLearnedPolicy = core.WithLearnedPolicy
)

var (
	// VerifyPolicy model-checks one request; an SLA violation is reported
	// as Pass=false, not as an error.
	VerifyPolicy = verify.Check
	// VerifySweep evaluates a parameter grid and marks the Pareto front.
	VerifySweep = verify.Sweep
	// VerifyReplay cross-validates a request empirically: seeded trace
	// replays through the real elastic controller.
	VerifyReplay = verify.Replay
	// VerifyModelFromCounts discretizes recorded per-tick arrival counts
	// (e.g. forecast.Recorder telemetry) into an arrival model, so live
	// demand can be verified against, not just synthetic specs.
	VerifyModelFromCounts = verify.ModelFromCounts
	// WithScalingPolicy injects a custom scaling policy into the control
	// loop (requires WithElastic).
	WithScalingPolicy = core.WithScalingPolicy
)

// Service construction.
var (
	// NewService starts a valuation service over a deployer.
	NewService = core.NewService
	// WithWorkers sets the number of concurrently running valuations (the
	// initial pool when elastic).
	WithWorkers = core.WithWorkers
	// WithQueueDepth sets the accepted-but-unstarted job capacity.
	WithQueueDepth = core.WithQueueDepth
	// WithRetention sets how many terminal jobs stay queryable.
	WithRetention = core.WithRetention
	// WithElastic enables the autoscaling control plane.
	WithElastic = core.WithElastic
	// WithElasticTick overrides the control-loop sampling interval.
	WithElasticTick = core.WithElasticTick
	// WithAdmissionControl enables deadline-aware admission over a runtime
	// estimator.
	WithAdmissionControl = core.WithAdmissionControl
	// PredictorEstimator builds a RuntimeEstimator over the deployer's
	// knowledge-base ensemble.
	PredictorEstimator = core.PredictorEstimator
)

// Cost-aware provisioning plane: per-provider price schedules (on-demand,
// reserved-discount and a seeded mean-reverting spot market with Poisson
// revocations), the cost-vs-deadline Pareto selector behind Constraints.Tiers
// and Constraints.MaxCost, and campaign-wide budget accounting. Tier and
// budget choices move money, never valuation bits: the golden SCR is
// byte-identical under every tier mix.
type (
	// Tier is a purchasing tier of the simulated cloud.
	Tier = cloud.Tier
	// PriceSchedule prices the catalog per tier, with a seeded spot-price walk.
	PriceSchedule = cloud.PriceSchedule
	// SpotMarket parameterises the spot price process and revocation rate.
	SpotMarket = cloud.SpotMarket
	// CostReport totals the money side of a job or campaign: billed dollars,
	// the all-on-demand counterfactual, savings, revocations survived, and
	// the budget state when one was set.
	CostReport = core.CostReport
	// BudgetError carries the numbers behind a budget rejection: the cheapest
	// feasible cost and the budget that could not cover it.
	BudgetError = core.BudgetError
	// OverBudgetError is the selector-level form of the same rejection.
	OverBudgetError = provision.OverBudgetError
)

// Purchasing tiers.
const (
	TierOnDemand = cloud.TierOnDemand
	TierReserved = cloud.TierReserved
	TierSpot     = cloud.TierSpot
)

// MinSamplesToTrain is the smallest per-architecture knowledge-base sample
// after which the predictors train — the floor for Deployer.Bootstrap runs.
const MinSamplesToTrain = provision.MinSamplesToTrain

// Cost-plane construction and errors.
var (
	// AllTiers lists every purchasing tier.
	AllTiers = cloud.AllTiers
	// ParseTier maps a tier name ("on-demand", "reserved", "spot") to its Tier.
	ParseTier = cloud.ParseTier
	// DefaultPriceSchedule returns the calibrated per-tier price schedule.
	DefaultPriceSchedule = cloud.DefaultPriceSchedule
	// DefaultSpotMarket returns the calibrated spot market parameters.
	DefaultSpotMarket = cloud.DefaultSpotMarket
	// ErrBudgetRejected means a budget cannot cover the cheapest feasible
	// deploy (or is exhausted); every *BudgetError wraps it.
	ErrBudgetRejected = core.ErrBudgetRejected
	// ErrOverBudget is the selector-level sentinel *OverBudgetError wraps.
	ErrOverBudget = provision.ErrOverBudget
)

// Service errors.
var (
	// ErrServiceClosed is returned by Submit after Close.
	ErrServiceClosed = core.ErrServiceClosed
	// ErrUnknownJob is returned for a JobID the service does not know.
	ErrUnknownJob = core.ErrUnknownJob
	// ErrQueueFull is Submit's backpressure signal: retry later.
	ErrQueueFull = core.ErrQueueFull
	// ErrAdmissionRejected means the scheduler predicted the job cannot meet
	// its deadline given the current backlog; every *AdmissionError wraps it.
	ErrAdmissionRejected = core.ErrAdmissionRejected
	// ErrDegenerateMeasurement flags a non-positive measured execution time.
	ErrDegenerateMeasurement = core.ErrDegenerateMeasurement
)

// Multi-node cluster: the stdlib TCP/HTTP worker transport that runs grid
// engines as separate processes. Workers register with a coordinator and
// execute outer-path slices shipped over the wire; the coordinator
// implements BlockRunner, so a deployer built WithBlockRunner routes every
// type-B valuation through the cluster; knowledge bases replicate between
// coordinators by idempotent merge; scenario sets are cached per node with
// one owner per shard on a consistent-hash ring.
type (
	// ClusterCoordinator owns worker membership, scatters blocks as
	// outer-path slices and re-slices a lost worker's range onto survivors.
	ClusterCoordinator = cluster.Coordinator
	// ClusterConfig parameterises a coordinator (heartbeat cadence, KB,
	// process launcher, local fallback width).
	ClusterConfig = cluster.CoordinatorConfig
	// ClusterWorker is one computing unit as a network service.
	ClusterWorker = cluster.Worker
	// ClusterStatus is the coordinator's point-in-time cluster view.
	ClusterStatus = cluster.Status
	// ClusterWorkerStatus is one membership row of ClusterStatus.
	ClusterWorkerStatus = cluster.WorkerStatus
	// ClusterLauncher starts worker processes for elastic process scaling.
	ClusterLauncher = cluster.Launcher
	// ClusterRing is the consistent-hash ring used for scenario-shard
	// ownership and cross-coordinator job routing.
	ClusterRing = cluster.Ring
	// BlockRunner executes a simulation's type-B blocks; the deployer
	// delegates to it when built WithBlockRunner.
	BlockRunner = core.BlockRunner
	// BlockRunRequest is one BlockRunner invocation.
	BlockRunRequest = core.BlockRunRequest
	// ScenarioRef is the serializable scenario-set recipe that keeps blocks
	// shippable across the cluster.
	ScenarioRef = stochastic.Ref
)

// Cluster construction.
var (
	// NewClusterCoordinator builds a coordinator.
	NewClusterCoordinator = cluster.NewCoordinator
	// NewClusterWorker builds a worker node.
	NewClusterWorker = cluster.NewWorker
	// NewClusterRing builds a consistent-hash ring over the given nodes.
	NewClusterRing = cluster.NewRing
	// WithBlockRunner routes the deployer's valuations through a cluster.
	WithBlockRunner = core.WithBlockRunner
	// WithProcessScaler forwards the elastic worker target to a process
	// scaler (ClusterCoordinator.ProcessScaler).
	WithProcessScaler = core.WithProcessScaler
)

// NewDeployer wires a transparent deploy system rooted at seed.
func NewDeployer(seed uint64, opts ...Option) (*Deployer, error) {
	return core.NewDeployer(seed, opts...)
}

// Deployer options.
var (
	// WithKnowledgeBase warm-starts from an existing knowledge base.
	WithKnowledgeBase = core.WithKnowledgeBase
	// WithCatalog restricts the instance types considered.
	WithCatalog = core.WithCatalog
	// WithPerfModel overrides the simulated-cloud performance model.
	WithPerfModel = core.WithPerfModel
	// WithHeterogeneous enables mixed-type deploys (the paper's future work).
	WithHeterogeneous = core.WithHeterogeneous
	// WithRetrainEvery relaxes the retraining cadence for long campaigns.
	WithRetrainEvery = core.WithRetrainEvery
)

// GeneratePortfolio synthesises a portfolio from the spec, deterministically
// in seed.
func GeneratePortfolio(seed uint64, spec GeneratorSpec) (*Portfolio, error) {
	return policy.Generate(finmath.NewRNG(seed), spec)
}

// ItalianCompanySpecs returns the three portfolio archetypes of the paper's
// experimental assessment.
func ItalianCompanySpecs() []GeneratorSpec { return policy.ItalianCompanySpecs() }

// Catalog returns the six EC2 instance types of Section IV.
func Catalog() []InstanceType { return cloud.Catalog() }

// TypeByName looks an instance type up by name.
func TypeByName(name string) (InstanceType, bool) { return cloud.TypeByName(name) }

// DefaultPerfModel returns the calibrated cloud performance model.
func DefaultPerfModel() PerfModel { return cloud.DefaultPerfModel() }

// TypicalItalianFund returns a segregated-fund configuration resembling the
// Italian funds of the paper's era, with the given number of asset sleeves.
func TypicalItalianFund(numAssets int, market MarketConfig) FundConfig {
	return fund.TypicalItalianFund(numAssets, market)
}

// DefaultMarket returns a market model with one equity index, typical
// euro-area rate/credit parameters of the mid-2010s, and the given horizon
// in years.
func DefaultMarket(horizonYears int) MarketConfig {
	return stochastic.Config{
		Horizon:      horizonYears,
		StepsPerYear: 1,
		Rate: stochastic.VasicekParams{
			R0: 0.015, Speed: 0.25, MeanP: 0.03, MeanQ: 0.025, Sigma: 0.009,
		},
		Equities: []stochastic.GBMParams{{S0: 100, Mu: 0.06, Sigma: 0.18}},
		Credit:   stochastic.CIRParams{L0: 0.008, Speed: 0.5, Mean: 0.012, Sigma: 0.03},
	}
}

// LongevityStress returns the Solvency II standard-formula longevity shock
// of a mortality model (a permanent 20% decrease of death probabilities),
// for computing the longevity SCR sub-module on annuity-heavy books.
func LongevityStress(base actuarial.MortalityModel) actuarial.MortalityModel {
	return actuarial.LongevityStress(base)
}

// MortalityStress returns the Solvency II mortality shock (+15% death
// probabilities).
func MortalityStress(base actuarial.MortalityModel) actuarial.MortalityModel {
	return actuarial.MortalityStress(base)
}

// IdentityMatrix returns the n-by-n identity matrix — the starting point for
// building the correlation structure of a MarketConfig.
func IdentityMatrix(n int) *RiskMatrix { return finmath.Identity(n) }

// NewKnowledgeBase returns an empty knowledge base.
func NewKnowledgeBase() *KnowledgeBase { return kb.New() }

// LoadKnowledgeBase reads a knowledge base saved with KnowledgeBase.SaveFile.
func LoadKnowledgeBase(path string) (*KnowledgeBase, error) { return kb.LoadFile(path) }
