package disarcloud_test

// Benchmark harness: one benchmark per table and figure of the paper's
// Section IV, plus the ablations. Each benchmark rebuilds its experiment
// from the shared campaign fixture and reports the headline quantities as
// custom metrics; run with
//
//	go test -bench=. -benchmem
//
// The printed rows/series themselves are produced by cmd/experiments; the
// benchmarks measure the cost of regenerating each result and assert, via
// b.Fatal, that the reproduction stays inside the paper's qualitative
// bands.

import (
	"context"
	"disarcloud"
	"math"
	"os"
	"sync"
	"testing"

	"disarcloud/internal/cloud"
	"disarcloud/internal/core"
	"disarcloud/internal/eeb"
	"disarcloud/internal/experiments"
	"disarcloud/internal/finmath"
	"disarcloud/internal/kb"
	"disarcloud/internal/provision"
)

// benchCampaign lazily builds the Section IV campaign with a ~1,000-sample
// knowledge base, shared across benchmarks (building it inside every
// benchmark would swamp the measurements).
var (
	benchOnce sync.Once
	benchC    *experiments.Campaign
	benchErr  error
)

func campaignFixture(b *testing.B) *experiments.Campaign {
	b.Helper()
	benchOnce.Do(func() {
		benchC, benchErr = experiments.NewCampaign(2016, core.WithRetrainEvery(10))
		if benchErr != nil {
			return
		}
		benchErr = benchC.BuildKB(1000)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchC
}

func benchKB(b *testing.B) *kb.KB { return campaignFixture(b).Deployer.KB() }

// BenchmarkTableI regenerates the delta-bar accuracy matrix (Table I):
// per-architecture 40/60 split, six learners trained and evaluated.
func BenchmarkTableI(b *testing.B) {
	k := benchKB(b)
	var res *experiments.AccuracyResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.EvaluateAccuracy(k, uint64(i)+7, 0.4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	worst := 0.0
	for _, m := range res.Models {
		for _, a := range res.Architectures {
			if d := math.Abs(res.DeltaBar[m][a]); d > worst {
				worst = d
			}
		}
	}
	if worst > 800 {
		b.Fatalf("delta-bar magnitude %v s outside the paper's band", worst)
	}
	b.ReportMetric(worst, "worst|deltabar|_s")
	if b.N == 1 {
		res.PrintTableI(os.Stdout)
	}
}

// BenchmarkTableII regenerates the per-simulation average cost per
// architecture (Table II).
func BenchmarkTableII(b *testing.B) {
	k := benchKB(b)
	var res *experiments.CostResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.EvaluateCosts(k)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.TotalUSD, "campaign_total_$")
	b.ReportMetric(res.AvgCostUSD[res.Cheapest()], "cheapest_avg_$")
	if b.N == 1 {
		res.PrintTableII(os.Stdout)
	}
}

// BenchmarkFigure2 regenerates the real-vs-predicted scatter and reports
// the worst per-model correlation (the diagonal-clustering criterion).
func BenchmarkFigure2(b *testing.B) {
	k := benchKB(b)
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.EvaluateAccuracy(k, uint64(i)+7, 0.4)
		if err != nil {
			b.Fatal(err)
		}
		worst = 1.0
		for _, c := range res.Figure2Correlation() {
			if c < worst {
				worst = c
			}
		}
	}
	if worst < 0.85 {
		b.Fatalf("worst model correlation %.3f — scatter not on the diagonal", worst)
	}
	b.ReportMetric(worst, "worst_corr")
}

// BenchmarkFigure3 regenerates the error histogram and reports the share of
// ensemble predictions within 200 s (paper: ~80%).
func BenchmarkFigure3(b *testing.B) {
	k := benchKB(b)
	var share float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.EvaluateAccuracy(k, uint64(i)+7, 0.4)
		if err != nil {
			b.Fatal(err)
		}
		share = res.ShareWithin(200)
	}
	if share < 0.70 {
		b.Fatalf("only %.0f%% of predictions within 200 s", 100*share)
	}
	b.ReportMetric(100*share, "pct_within_200s")
	if b.N == 1 {
		res, _ := experiments.EvaluateAccuracy(k, 7, 0.4)
		res.PrintFigure3(os.Stdout)
	}
}

// BenchmarkFigure4 regenerates the cloud-vs-sequential speedups.
func BenchmarkFigure4(b *testing.B) {
	c := campaignFixture(b)
	pm := cloud.DefaultPerfModel()
	var res *experiments.SpeedupResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.EvaluateSpeedup(pm, c.Workloads)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	maxS := 0.0
	for _, a := range res.Architectures {
		if res.Speedup[a] > maxS {
			maxS = res.Speedup[a]
		}
		if res.Speedup[a] < 2 || res.Speedup[a] > 10 {
			b.Fatalf("%s speedup %v outside Figure 4's axis", a, res.Speedup[a])
		}
	}
	b.ReportMetric(maxS, "max_speedup_x")
	if b.N == 1 {
		res.PrintFigure4(os.Stdout)
	}
}

// BenchmarkFinalComparison regenerates the closing experiment: forced
// high-end and forced cost-effective deploys versus the ML selection under
// a binding deadline.
func BenchmarkFinalComparison(b *testing.B) {
	c := campaignFixture(b)
	f := c.Workloads[0]
	for _, w := range c.Workloads {
		if w.Complexity() > f.Complexity() {
			f = w
		}
	}
	pm := cloud.DefaultPerfModel()
	var res *experiments.FinalComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.EvaluateFinalComparison(c.Deployer.Selector(), pm, f,
			provision.Constraints{TmaxSeconds: 0, MaxNodes: 8, Epsilon: 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res.CostDecrease <= 0 || res.TimeReduction <= 0 {
		b.Fatalf("shape broken: cost %.1f%%, time %.1f%%",
			100*res.CostDecrease, 100*res.TimeReduction)
	}
	b.ReportMetric(100*res.CostDecrease, "cost_decrease_pct")
	b.ReportMetric(100*res.TimeReduction, "time_reduction_pct")
	if b.N == 1 {
		res.PrintFinal(os.Stdout)
	}
}

// BenchmarkAblationEnsemble measures the single-model-vs-ensemble ablation.
func BenchmarkAblationEnsemble(b *testing.B) {
	k := benchKB(b)
	var res *experiments.EnsembleAblation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.EvaluateEnsembleAblation(k, uint64(i)+3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.MAE["Ensemble"], "ensemble_mae_s")
	b.ReportMetric(res.WorstSingle, "worst_single_mae_s")
}

// BenchmarkAblationHeterogeneous measures the homogeneous-vs-mixed deploy
// ablation (the paper's future work).
func BenchmarkAblationHeterogeneous(b *testing.B) {
	c := campaignFixture(b)
	pm := cloud.DefaultPerfModel()
	f := c.Workloads[4]
	var res *experiments.HeterogeneousAblation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.EvaluateHeterogeneousAblation(pm, f,
			[]float64{1.6, 1.3, 1.0, 0.85}, 6, uint64(i)+5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	gain := 0.0
	for i := range res.Deadlines {
		g := 1 - res.HeteroCost[i]/res.HomoCost[i]
		if g > gain {
			gain = g
		}
	}
	b.ReportMetric(100*gain, "best_hetero_gain_pct")
}

// BenchmarkSelfOptimizingLoop measures one full Deploy iteration (Algorithm
// 1 + simulated execution + record + retrain) against the trained system —
// the steady-state cost of the paper's loop.
func BenchmarkSelfOptimizingLoop(b *testing.B) {
	c := campaignFixture(b)
	cons := provision.Constraints{TmaxSeconds: 900, MaxNodes: 8, Epsilon: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := c.Workloads[i%len(c.Workloads)]
		if _, err := c.Deployer.Deploy(context.Background(), f, cons); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm1Selection isolates the configuration search of
// Algorithm 1 (no execution, no retraining).
func BenchmarkAlgorithm1Selection(b *testing.B) {
	c := campaignFixture(b)
	cons := provision.Constraints{TmaxSeconds: 900, MaxNodes: 8, Epsilon: 0}
	f := c.Workloads[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Deployer.Selector().Select(context.Background(), f, cons); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKBRetrain measures one incremental retraining step of the six
// learners on a production-size architecture slice.
func BenchmarkKBRetrain(b *testing.B) {
	k := benchKB(b)
	pred := provision.NewEnsemblePredictor(1)
	arch := k.Architectures()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pred.RetrainArchitecture(k, arch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroundTruthSample measures drawing one noisy execution-time
// sample from the calibrated performance model.
func BenchmarkGroundTruthSample(b *testing.B) {
	pm := cloud.DefaultPerfModel()
	it, _ := cloud.TypeByName("c4.8xlarge")
	f := eeb.CharacteristicParams{
		RepresentativeContracts: 15, MaxHorizon: 25, FundAssets: 8,
		RiskFactors: 3, OuterPaths: 1000, InnerPaths: 50,
	}
	r := finmath.NewRNG(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pm.ExecSeconds(r, it, 4, f)
	}
}

// campaignBenchSpec is the base valuation of the stress-campaign benchmarks:
// big enough that scenario generation is a real share of the work, small
// enough to iterate.
func campaignBenchSpec(b *testing.B) disarcloud.SimulationSpec {
	b.Helper()
	gen := disarcloud.ItalianCompanySpecs()[0]
	gen.NumContracts = 15
	p, err := disarcloud.GeneratePortfolio(43, gen)
	if err != nil {
		b.Fatal(err)
	}
	// A correlated multi-factor market (two equities, one currency, credit):
	// the correlation structure makes path generation genuinely expensive —
	// exactly what the shared scenario set amortises across the modules.
	market := disarcloud.DefaultMarket(p.MaxTerm())
	market.Equities = append(market.Equities,
		disarcloud.DefaultMarket(p.MaxTerm()).Equities[0])
	market.Equities[1].S0, market.Equities[1].Sigma = 50, 0.22
	market.Currencies = []disarcloud.GBMParams{{S0: 1.1, Mu: 0.01, Sigma: 0.08}}
	corr := finmath.Identity(market.NumFactors())
	set := func(i, j int, v float64) { corr.Set(i, j, v); corr.Set(j, i, v) }
	set(0, 1, -0.2) // rate / equity 1
	set(0, 2, -0.15)
	set(1, 2, 0.6) // the two equities
	set(1, 3, 0.25)
	set(0, 4, 0.2) // rate / credit
	market.Corr = corr
	return disarcloud.SimulationSpec{
		Portfolio:   p,
		Fund:        disarcloud.TypicalItalianFund(6, market),
		Market:      market,
		Outer:       200,
		Inner:       10,
		Constraints: disarcloud.Constraints{TmaxSeconds: 3600, MaxNodes: 8, Epsilon: 0},
		MaxWorkers:  4,
		Seed:        42,
	}
}

// runCampaign executes one full 7-module standard-formula campaign on a
// fresh service and returns the report.
func runCampaign(b *testing.B, noReuse bool) *disarcloud.CampaignReport {
	b.Helper()
	d, err := disarcloud.NewDeployer(2016, disarcloud.WithRetrainEvery(100))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(4))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	id, err := svc.SubmitCampaign(context.Background(), disarcloud.CampaignSpec{
		Base:            campaignBenchSpec(b),
		NoScenarioReuse: noReuse,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := svc.CampaignResult(context.Background(), id)
	if err != nil {
		b.Fatal(err)
	}
	if rep.SCR.BSCR <= 0 {
		b.Fatal("campaign produced no capital requirement")
	}
	return rep
}

// BenchmarkCampaignReuse measures a 7-module standard-formula campaign with
// the shared scenario set: the base paths are generated once and every
// module derives its scenarios by shift/rescale.
func BenchmarkCampaignReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCampaign(b, false)
	}
}

// BenchmarkCampaignIndependent is the baseline the reuse is measured
// against: the same campaign with every one of the 8 jobs regenerating its
// scenario paths (results are bit-identical to the reuse run).
func BenchmarkCampaignIndependent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCampaign(b, true)
	}
}
