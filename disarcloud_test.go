package disarcloud_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"disarcloud"
)

// TestPublicAPIQuickstart exercises the documented minimal session end to
// end through the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	d, err := disarcloud.NewDeployer(42)
	if err != nil {
		t.Fatal(err)
	}
	spec := disarcloud.ItalianCompanySpecs()[0]
	spec.NumContracts = 6 // keep the real valuation quick
	p, err := disarcloud.GeneratePortfolio(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	market := disarcloud.DefaultMarket(p.MaxTerm())
	rep, err := d.RunSimulation(context.Background(), disarcloud.SimulationSpec{
		Portfolio:   p,
		Fund:        disarcloud.TypicalItalianFund(4, market),
		Market:      market,
		Outer:       30,
		Inner:       4,
		Constraints: disarcloud.Constraints{TmaxSeconds: 3600, MaxNodes: 4, Epsilon: 0},
		MaxWorkers:  4,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SCR <= 0 || rep.BEL <= 0 {
		t.Fatalf("degenerate result: BEL=%v SCR=%v", rep.BEL, rep.SCR)
	}
	if rep.Deploy.ActualSeconds <= 0 {
		t.Fatal("no deploy record")
	}
}

// TestPublicAPIService exercises the service surface through the facade:
// submit, progress, result, status, and cancellation semantics.
func TestPublicAPIService(t *testing.T) {
	d, err := disarcloud.NewDeployer(43)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	spec := disarcloud.ItalianCompanySpecs()[0]
	spec.NumContracts = 6
	p, err := disarcloud.GeneratePortfolio(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	market := disarcloud.DefaultMarket(p.MaxTerm())
	ctx := context.Background()
	id, err := svc.Submit(ctx, disarcloud.SimulationSpec{
		Portfolio:   p,
		Fund:        disarcloud.TypicalItalianFund(4, market),
		Market:      market,
		Outer:       30,
		Inner:       4,
		Constraints: disarcloud.Constraints{TmaxSeconds: 3600, MaxNodes: 4, Epsilon: 0},
		MaxWorkers:  2,
		Seed:        43,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, unsub, err := svc.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	rep, err := svc.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BEL <= 0 || rep.SCR <= 0 {
		t.Fatalf("degenerate result: BEL=%v SCR=%v", rep.BEL, rep.SCR)
	}
	// The stream must have closed with the job.
	for range events {
	}
	snap, err := svc.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != disarcloud.JobDone {
		t.Fatalf("status %s, want done", snap.Status)
	}
	if _, err := svc.Status("job-unknown"); !errors.Is(err, disarcloud.ErrUnknownJob) {
		t.Fatalf("unknown job error = %v", err)
	}
}

func TestPublicAPICatalog(t *testing.T) {
	if len(disarcloud.Catalog()) != 6 {
		t.Fatal("catalog must list the six Section IV architectures")
	}
	it, ok := disarcloud.TypeByName("m4.10xlarge")
	if !ok || it.VCPUs != 40 {
		t.Fatal("TypeByName lookup broken")
	}
	if err := disarcloud.DefaultPerfModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIKnowledgeBasePersistence(t *testing.T) {
	k := disarcloud.NewKnowledgeBase()
	if err := k.Add(disarcloud.Sample{
		Architecture: "c3.4xlarge",
		Nodes:        2,
		Params: disarcloud.CharacteristicParams{
			RepresentativeContracts: 10, MaxHorizon: 20, FundAssets: 4,
			RiskFactors: 3, OuterPaths: 1000, InnerPaths: 50,
		},
		Seconds: 220,
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kb.json")
	if err := k.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := disarcloud.LoadKnowledgeBase(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatal("knowledge base round trip failed")
	}
	// Warm start a deployer from the loaded KB through the public option.
	if _, err := disarcloud.NewDeployer(1, disarcloud.WithKnowledgeBase(loaded)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIContractMechanics(t *testing.T) {
	c := disarcloud.Contract{
		Kind: disarcloud.Endowment, Age: 45, Gender: disarcloud.Male,
		Term: 10, InsuredSum: 50000, Beta: 0.8, TechnicalRate: 0.02, Count: 10,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	p := &disarcloud.Portfolio{Name: "api", Contracts: []disarcloud.Contract{c}}
	if p.MaxTerm() != 10 || p.TotalPolicies() != 10 {
		t.Fatal("portfolio aggregates broken through the facade")
	}
}

// TestPublicAPIStressCampaign is the acceptance check of the stress
// subsystem through the public surface: a seven-module standard-formula
// campaign through Service.SubmitCampaign produces per-module delta-BEL and
// a correlation-aggregated SCR, scenario-set reuse generates the base paths
// exactly once, and disabling reuse changes nothing but the work done.
func TestPublicAPIStressCampaign(t *testing.T) {
	gen := disarcloud.ItalianCompanySpecs()[0]
	gen.NumContracts = 6
	p, err := disarcloud.GeneratePortfolio(3, gen)
	if err != nil {
		t.Fatal(err)
	}
	market := disarcloud.DefaultMarket(p.MaxTerm())
	base := disarcloud.SimulationSpec{
		Portfolio:   p,
		Fund:        disarcloud.TypicalItalianFund(4, market),
		Market:      market,
		Outer:       40,
		Inner:       4,
		Constraints: disarcloud.Constraints{TmaxSeconds: 3600, MaxNodes: 4, Epsilon: 0},
		MaxWorkers:  2,
		Seed:        21,
	}
	run := func(noReuse bool) *disarcloud.CampaignReport {
		d, err := disarcloud.NewDeployer(5)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		id, err := svc.SubmitCampaign(context.Background(), disarcloud.CampaignSpec{
			Base: base, NoScenarioReuse: noReuse,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := svc.CampaignResult(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run(false)
	if len(rep.Modules) != 7 {
		t.Fatalf("standard campaign ran %d modules, want 7", len(rep.Modules))
	}
	seen := map[disarcloud.StressModule]bool{}
	for _, m := range rep.Modules {
		seen[m.Module] = true
		if m.DeltaBEL < 0 {
			t.Fatalf("module %s delta %v below the zero floor", m.Module, m.DeltaBEL)
		}
	}
	for _, want := range []disarcloud.StressModule{
		disarcloud.ModuleInterestUp, disarcloud.ModuleInterestDown,
		disarcloud.ModuleEquity, disarcloud.ModuleCurrency, disarcloud.ModuleSpread,
		disarcloud.ModuleMortality, disarcloud.ModuleLapse,
	} {
		if !seen[want] {
			t.Fatalf("standard campaign missing module %s", want)
		}
	}
	if rep.SCR.BSCR <= 0 {
		t.Fatalf("aggregated basic SCR %v not positive", rep.SCR.BSCR)
	}
	indep := run(true)
	if rep.BaseBEL != indep.BaseBEL || rep.SCR != indep.SCR {
		t.Fatal("scenario-set reuse changed the campaign results")
	}
}
