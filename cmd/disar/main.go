// Command disar runs one transparently cloud-deployed Solvency II valuation
// end to end: it generates (or reuses) an Italian-style portfolio, lets the
// ML-based provisioner pick the deploy under the given deadline, runs the
// real distributed nested Monte Carlo valuation, and reports BEL, SCR, the
// selected configuration, the simulated execution time and the cost.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"disarcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "disar:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		portfolioIdx = flag.Int("portfolio", 0, "portfolio archetype 0..2 (savings/mixed/annuity)")
		contracts    = flag.Int("contracts", 20, "representative contracts to generate")
		outer        = flag.Int("outer", 200, "n_P real-world scenarios")
		inner        = flag.Int("inner", 10, "n_Q risk-neutral scenarios per outer path")
		tmax         = flag.Float64("tmax", 900, "deadline in (simulated) seconds")
		maxNodes     = flag.Int("maxnodes", 8, "maximum VMs explored by Algorithm 1")
		epsilon      = flag.Float64("epsilon", 0.05, "exploration probability")
		seed         = flag.Uint64("seed", 42, "root seed")
		kbPath       = flag.String("kb", "", "knowledge-base JSON to load and update")
		workers      = flag.Int("workers", 8, "in-process valuation workers")
	)
	flag.Parse()

	specs := disarcloud.ItalianCompanySpecs()
	if *portfolioIdx < 0 || *portfolioIdx >= len(specs) {
		return fmt.Errorf("portfolio index %d outside 0..%d", *portfolioIdx, len(specs)-1)
	}
	spec := specs[*portfolioIdx]
	spec.NumContracts = *contracts

	opts := []disarcloud.Option{}
	if *kbPath != "" {
		if k, err := disarcloud.LoadKnowledgeBase(*kbPath); err == nil {
			opts = append(opts, disarcloud.WithKnowledgeBase(k))
			fmt.Printf("loaded knowledge base: %d samples\n", k.Len())
		} else {
			fmt.Printf("starting a fresh knowledge base (%v)\n", err)
		}
	}
	d, err := disarcloud.NewDeployer(*seed, opts...)
	if err != nil {
		return err
	}
	p, err := disarcloud.GeneratePortfolio(*seed+1, spec)
	if err != nil {
		return err
	}
	market := disarcloud.DefaultMarket(p.MaxTerm())
	fmt.Printf("portfolio %q: %d representative contracts, %d policies, max term %dy\n",
		p.Name, p.NumRepresentative(), p.TotalPolicies(), p.MaxTerm())

	// Ctrl-C cancels the submitted job; the service then reports
	// context.Canceled instead of leaving a half-done valuation behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(1))
	if err != nil {
		return err
	}
	defer svc.Close()

	id, err := svc.Submit(ctx, disarcloud.SimulationSpec{
		Portfolio: p,
		Fund:      disarcloud.TypicalItalianFund(6, market),
		Market:    market,
		Outer:     *outer,
		Inner:     *inner,
		Constraints: disarcloud.Constraints{
			TmaxSeconds: *tmax, MaxNodes: *maxNodes, Epsilon: *epsilon,
		},
		MaxWorkers: *workers,
		Seed:       *seed,
	})
	if err != nil {
		return err
	}
	events, unsub, err := svc.Progress(id)
	if err != nil {
		return err
	}
	defer unsub()
	go func() {
		for ev := range events {
			if ev.Done == ev.Total || ev.Done%50 == 0 {
				fmt.Printf("  progress: block %s %d/%d outer paths\n", ev.BlockID, ev.Done, ev.Total)
			}
		}
	}()

	rep, err := svc.Result(ctx, id)
	if err != nil {
		return err
	}

	fmt.Printf("\nSolvency II results (n_P=%d, n_Q=%d):\n", *outer, *inner)
	fmt.Printf("  best-estimate liability (BEL): %14.2f\n", rep.BEL)
	fmt.Printf("  solvency capital req.   (SCR): %14.2f\n", rep.SCR)
	fmt.Printf("  blocks valued: %d\n", len(rep.Results))

	dr := rep.Deploy
	mode := "ML-selected"
	if dr.Bootstrap {
		mode = "bootstrap (knowledge base still too small)"
	}
	if dr.Fallback {
		mode = "fastest-available fallback (deadline infeasible)"
	}
	fmt.Printf("\ncloud deploy [%s]:\n", mode)
	fmt.Printf("  configuration: %s\n", dr.Choice.String())
	if dr.PredictedSeconds > 0 {
		fmt.Printf("  predicted time: %8.1f s\n", dr.PredictedSeconds)
	}
	fmt.Printf("  simulated time: %8.1f s (deadline %0.0f s)\n", dr.ActualSeconds, *tmax)
	fmt.Printf("  cost: %.3f$ pro-rata, %.2f$ billed (hourly rounding)\n", dr.ProRataUSD, dr.BilledUSD)
	fmt.Printf("  knowledge base now holds %d samples\n", dr.KBSize)

	if *kbPath != "" {
		if err := d.KB().SaveFile(*kbPath); err != nil {
			return err
		}
		fmt.Printf("knowledge base saved to %s\n", *kbPath)
	}
	return nil
}
