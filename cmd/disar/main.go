// Command disar runs one transparently cloud-deployed Solvency II valuation
// end to end: it generates (or reuses) an Italian-style portfolio, lets the
// ML-based provisioner pick the deploy under the given deadline, runs the
// real distributed nested Monte Carlo valuation, and reports BEL, SCR, the
// selected configuration, the simulated execution time and the cost.
//
// With -stress the single valuation becomes a standard-formula stress
// campaign: the base job plus seven shocked revaluations sharing one
// scenario set, reported as per-module delta-BEL and the correlation-
// aggregated SCR.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"disarcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "disar:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		portfolioIdx = flag.Int("portfolio", 0, "portfolio archetype 0..2 (savings/mixed/annuity)")
		contracts    = flag.Int("contracts", 20, "representative contracts to generate")
		outer        = flag.Int("outer", 200, "n_P real-world scenarios")
		inner        = flag.Int("inner", 10, "n_Q risk-neutral scenarios per outer path")
		tmax         = flag.Float64("tmax", 900, "deadline in (simulated) seconds")
		maxNodes     = flag.Int("maxnodes", 8, "maximum VMs explored by Algorithm 1")
		epsilon      = flag.Float64("epsilon", 0.05, "exploration probability")
		seed         = flag.Uint64("seed", 42, "root seed")
		kbPath       = flag.String("kb", "", "knowledge-base JSON to load and update")
		workers      = flag.Int("workers", 8, "in-process valuation workers")
		stressMode   = flag.Bool("stress", false, "run a standard-formula stress campaign instead of a single valuation")
		noReuse      = flag.Bool("noreuse", false, "with -stress: regenerate scenarios per module instead of reusing the shared set")
	)
	flag.Parse()

	specs := disarcloud.ItalianCompanySpecs()
	if *portfolioIdx < 0 || *portfolioIdx >= len(specs) {
		return fmt.Errorf("portfolio index %d outside 0..%d", *portfolioIdx, len(specs)-1)
	}
	spec := specs[*portfolioIdx]
	spec.NumContracts = *contracts

	opts := []disarcloud.Option{}
	if *kbPath != "" {
		if k, err := disarcloud.LoadKnowledgeBase(*kbPath); err == nil {
			opts = append(opts, disarcloud.WithKnowledgeBase(k))
			fmt.Printf("loaded knowledge base: %d samples\n", k.Len())
		} else {
			fmt.Printf("starting a fresh knowledge base (%v)\n", err)
		}
	}
	d, err := disarcloud.NewDeployer(*seed, opts...)
	if err != nil {
		return err
	}
	p, err := disarcloud.GeneratePortfolio(*seed+1, spec)
	if err != nil {
		return err
	}
	market := disarcloud.DefaultMarket(p.MaxTerm())
	fmt.Printf("portfolio %q: %d representative contracts, %d policies, max term %dy\n",
		p.Name, p.NumRepresentative(), p.TotalPolicies(), p.MaxTerm())

	// Ctrl-C cancels the submitted job; the service then reports
	// context.Canceled instead of leaving a half-done valuation behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	svcWorkers := 1
	if *stressMode {
		// A campaign is the base job plus seven shocked revaluations; give
		// the service enough workers to overlap them.
		svcWorkers = 4
	}
	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(svcWorkers))
	if err != nil {
		return err
	}
	defer svc.Close()

	simSpec := disarcloud.SimulationSpec{
		Portfolio: p,
		Fund:      disarcloud.TypicalItalianFund(6, market),
		Market:    market,
		Outer:     *outer,
		Inner:     *inner,
		Constraints: disarcloud.Constraints{
			TmaxSeconds: *tmax, MaxNodes: *maxNodes, Epsilon: *epsilon,
		},
		MaxWorkers: *workers,
		Seed:       *seed,
	}

	if *stressMode {
		if err := runStress(ctx, svc, simSpec, *noReuse); err != nil {
			return err
		}
		return saveKB(d, *kbPath)
	}

	id, err := svc.Submit(ctx, simSpec)
	if err != nil {
		return err
	}
	events, unsub, err := svc.Progress(id)
	if err != nil {
		return err
	}
	defer unsub()
	go func() {
		for ev := range events {
			if ev.Done == ev.Total || ev.Done%50 == 0 {
				fmt.Printf("  progress: block %s %d/%d outer paths\n", ev.BlockID, ev.Done, ev.Total)
			}
		}
	}()

	rep, err := svc.Result(ctx, id)
	if err != nil {
		return err
	}

	fmt.Printf("\nSolvency II results (n_P=%d, n_Q=%d):\n", *outer, *inner)
	fmt.Printf("  best-estimate liability (BEL): %14.2f\n", rep.BEL)
	fmt.Printf("  solvency capital req.   (SCR): %14.2f\n", rep.SCR)
	fmt.Printf("  blocks valued: %d\n", len(rep.Results))

	dr := rep.Deploy
	mode := "ML-selected"
	if dr.Bootstrap {
		mode = "bootstrap (knowledge base still too small)"
	}
	if dr.Fallback {
		mode = "fastest-available fallback (deadline infeasible)"
	}
	fmt.Printf("\ncloud deploy [%s]:\n", mode)
	fmt.Printf("  configuration: %s\n", dr.Choice.String())
	if dr.PredictedSeconds > 0 {
		fmt.Printf("  predicted time: %8.1f s\n", dr.PredictedSeconds)
	}
	fmt.Printf("  simulated time: %8.1f s (deadline %0.0f s)\n", dr.ActualSeconds, *tmax)
	fmt.Printf("  cost: %.3f$ pro-rata, %.2f$ billed (hourly rounding)\n", dr.ProRataUSD, dr.BilledUSD)
	fmt.Printf("  knowledge base now holds %d samples\n", dr.KBSize)

	return saveKB(d, *kbPath)
}

// saveKB persists the knowledge base when a path was given.
func saveKB(d *disarcloud.Deployer, path string) error {
	if path == "" {
		return nil
	}
	if err := d.KB().SaveFile(path); err != nil {
		return err
	}
	fmt.Printf("knowledge base saved to %s\n", path)
	return nil
}

// runStress submits the standard-formula campaign and prints the per-module
// charges and the aggregated SCR.
func runStress(ctx context.Context, svc *disarcloud.Service, spec disarcloud.SimulationSpec, noReuse bool) error {
	start := time.Now()
	id, err := svc.SubmitCampaign(ctx, disarcloud.CampaignSpec{
		Base:            spec,
		NoScenarioReuse: noReuse,
	})
	if err != nil {
		return err
	}
	rep, err := svc.CampaignResult(ctx, id)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("\nstandard-formula stress campaign %s (n_P=%d, n_Q=%d, reuse=%v):\n",
		id, spec.Outer, spec.Inner, !noReuse)
	fmt.Printf("  base BEL: %14.2f   (99.5%% VaR SCR of the base job: %.2f)\n",
		rep.BaseBEL, rep.BaseVaRSCR)
	fmt.Printf("  %-14s %14s %14s\n", "module", "shocked BEL", "delta BEL")
	for _, m := range rep.Modules {
		fmt.Printf("  %-14s %14.2f %14.2f\n", m.Module, m.BEL, m.DeltaBEL)
	}
	scr := rep.SCR
	binding := "up"
	if scr.InterestDownBinding {
		binding = "down"
	}
	fmt.Printf("\nstandard-formula aggregation:\n")
	fmt.Printf("  interest (binding: %s): %12.2f\n", binding, scr.Interest)
	fmt.Printf("  market:                 %12.2f\n", scr.Market)
	fmt.Printf("  life:                   %12.2f\n", scr.Life)
	if scr.Other > 0 {
		fmt.Printf("  other:                  %12.2f\n", scr.Other)
	}
	fmt.Printf("  basic SCR:              %12.2f\n", scr.BSCR)
	fmt.Printf("\ncampaign wall time: %s (%d jobs)\n", elapsed.Round(time.Millisecond), len(rep.Modules)+1)
	return nil
}
