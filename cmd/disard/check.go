package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"disarcloud"
)

// maxCheckBytes bounds the -check request file: a model-checking request is
// a few hundred bytes of configuration, so anything near the cap is not a
// request.
const maxCheckBytes = 1 << 20

// decodeVerifyRequest decodes one JSON verify request. Strict by design —
// the file gates CI, so a typoed field name must fail loudly instead of
// silently checking the default it fell back to.
func decodeVerifyRequest(r io.Reader) (disarcloud.VerifyRequest, error) {
	var req disarcloud.VerifyRequest
	body, err := io.ReadAll(io.LimitReader(r, maxCheckBytes+1))
	if err != nil {
		return req, fmt.Errorf("read verify request: %w", err)
	}
	if len(body) > maxCheckBytes {
		return req, fmt.Errorf("verify request exceeds %d bytes", maxCheckBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("decode verify request: %w", err)
	}
	// A second token means trailing garbage after the request object.
	if _, err := dec.Token(); err != io.EOF {
		return req, fmt.Errorf("decode verify request: trailing data after the JSON object")
	}
	return req, nil
}

// runCheck is the `disard -check <file>` mode: model-check the scaling
// policy described by the request file against its SLA and exit. The full
// report is printed as JSON either way; a violated SLA (or an invalid
// request) is a non-zero exit, which is what lets CI gate on the shipped
// default configuration.
func runCheck(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	req, err := decodeVerifyRequest(f)
	if err != nil {
		return err
	}
	// A relative qtable path is resolved against the request file's own
	// directory: the request names its artifact, wherever -check runs from.
	if req.QTable != "" && !filepath.IsAbs(req.QTable) {
		req.QTable = filepath.Join(filepath.Dir(path), req.QTable)
	}
	report, err := disarcloud.VerifyPolicy(req)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if !report.Pass {
		return fmt.Errorf(
			"SLA violated: P(queue >= %d within %d ticks) = %.6f > %.6f",
			report.Request.SLA.QueueBound, report.Request.SLA.HorizonTicks,
			report.Properties.PViolation, report.Request.SLA.MaxProbability)
	}
	fmt.Fprintf(os.Stderr, "SLA holds: P(queue >= %d within %d ticks) = %.6f <= %.6f\n",
		report.Request.SLA.QueueBound, report.Request.SLA.HorizonTicks,
		report.Properties.PViolation, report.Request.SLA.MaxProbability)
	return nil
}
