package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"disarcloud"
)

// fastCheckRequest is a small-state-space request for exercising runCheck
// end to end without the cost of the committed gate configuration (which CI
// runs through the real binary).
func fastCheckRequest(maxProbability string) string {
	return `{
	  "policy": "reactive",
	  "min_workers": 2,
	  "max_workers": 6,
	  "tick_ms": 100,
	  "mean_runtime_ms": 250,
	  "max_queue": 24,
	  "trace": {"Kind": "bursty", "Intervals": 64, "Seed": 1, "BaseRate": 1, "PeakRate": 4},
	  "sla": {"queue_bound": 12, "horizon_ticks": 30, "max_probability": ` + maxProbability + `}
	}`
}

func writeCheckFile(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "req.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCheckPassAndReport(t *testing.T) {
	path := writeCheckFile(t, fastCheckRequest("0.999999"))
	var out bytes.Buffer
	if err := runCheck(path, &out); err != nil {
		t.Fatalf("runCheck on a satisfiable bound: %v", err)
	}
	var report disarcloud.VerifyReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if !report.Pass {
		t.Fatalf("report.Pass = false under a near-1 bound: %+v", report.Properties)
	}
	if report.Properties.PViolation < 0 || report.Properties.PViolation > 1 {
		t.Fatalf("violation probability %v outside [0,1]", report.Properties.PViolation)
	}
	if report.Properties.States == 0 {
		t.Fatal("report carries no state count")
	}
}

func TestRunCheckViolationIsNonZeroExit(t *testing.T) {
	// A probability bound of ~0 is unsatisfiable for any chain that can
	// reach the queue bound at all.
	path := writeCheckFile(t, fastCheckRequest("0.000001"))
	var out bytes.Buffer
	err := runCheck(path, &out)
	if err == nil {
		t.Fatal("runCheck accepted a violated SLA")
	}
	if !strings.Contains(err.Error(), "SLA violated") {
		t.Fatalf("violation error %q does not name the SLA", err)
	}
	// The report must still have been printed before the verdict: the
	// numbers are the point of a failing gate.
	var report disarcloud.VerifyReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("failing check printed no report: %v", err)
	}
	if report.Pass {
		t.Fatal("printed report claims Pass despite the violation exit")
	}
}

func TestRunCheckRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"unknown field", `{"policy":"reactive","min_wrkers":2}`},
		{"trailing data", fastCheckRequest("0.5") + `{"again":true}`},
		{"malformed json", `{"policy":`},
		{"bad policy", `{"policy":"psychic","min_workers":2,"max_workers":4,"tick_ms":100,"mean_runtime_ms":100,"trace":{"Kind":"bursty","Intervals":64,"Seed":1},"sla":{"queue_bound":8,"horizon_ticks":10,"max_probability":0.5}}`},
		{"missing sla", `{"policy":"reactive","min_workers":2,"max_workers":4,"tick_ms":100,"mean_runtime_ms":100,"trace":{"Kind":"bursty","Intervals":64,"Seed":1}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeCheckFile(t, tc.body)
			if err := runCheck(path, new(bytes.Buffer)); err == nil {
				t.Fatalf("runCheck accepted %s", tc.name)
			}
		})
	}
	if err := runCheck(filepath.Join(t.TempDir(), "missing.json"), new(bytes.Buffer)); err == nil {
		t.Fatal("runCheck accepted a missing file")
	}
}

// TestCommittedGateFilesDecode pins the CI gate inputs: both committed
// request files must decode strictly and validate, and they must differ
// only in the queue bound under test. The actual pass/fail verdicts run in
// CI through the built binary (and the verify package's own tests cover the
// math); this keeps a refactor of the request schema from silently
// orphaning the gate files.
func TestCommittedGateFilesDecode(t *testing.T) {
	var reqs [2]disarcloud.VerifyRequest
	for i, name := range []string{"verify_default.json", "verify_violation.json"} {
		f, err := os.Open(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		req, err := decodeVerifyRequest(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("%s does not validate: %v", name, err)
		}
		reqs[i] = req
	}
	if reqs[0].SLA.QueueBound <= reqs[1].SLA.QueueBound {
		t.Fatalf("violation file must test a tighter queue bound: default %d vs violation %d",
			reqs[0].SLA.QueueBound, reqs[1].SLA.QueueBound)
	}
	reqs[1].SLA.QueueBound = reqs[0].SLA.QueueBound
	a, _ := json.Marshal(reqs[0])
	b, _ := json.Marshal(reqs[1])
	if !bytes.Equal(a, b) {
		t.Fatalf("gate files differ beyond the queue bound:\n%s\n%s", a, b)
	}
}
