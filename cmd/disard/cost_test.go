package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"disarcloud"
)

// trainWorkloads is a small EEB mix for Bootstrap: enough spread that the
// predictors train, small enough that the handler tests stay fast.
func trainWorkloads() []disarcloud.CharacteristicParams {
	base := disarcloud.CharacteristicParams{
		RepresentativeContracts: 15, MaxHorizon: 25, FundAssets: 8,
		RiskFactors: 3, OuterPaths: 1000, InnerPaths: 50,
	}
	var out []disarcloud.CharacteristicParams
	for _, contracts := range []int{5, 15, 40, 70} {
		for _, horizon := range []int{10, 25, 40} {
			f := base
			f.RepresentativeContracts = contracts
			f.MaxHorizon = horizon
			out = append(out, f)
		}
	}
	return out
}

// newCostTestServer wires the handler with a TRAINED deployer plus the
// -spot / -max-cost defaults, so budget admission runs up front rather than
// falling back to the bootstrap path.
func newCostTestServer(t *testing.T, defaultTiers []disarcloud.Tier, defaultBudget float64) *httptest.Server {
	t.Helper()
	d, err := disarcloud.NewDeployer(2016)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Bootstrap(context.Background(), trainWorkloads(), disarcloud.MinSamplesToTrain, 6); err != nil {
		t.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(svc, d, 2016, nil, nil, defaultTiers, defaultBudget))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv
}

func TestCostEndpointPriceCard(t *testing.T) {
	srv := newCostTestServer(t, disarcloud.AllTiers(), 25)

	resp, err := http.Get(srv.URL + "/v1/cost")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cost status %d, want 200", resp.StatusCode)
	}
	out := decodeJSON[map[string]any](t, resp)
	if out["spot_enabled"] != true {
		t.Fatalf("spot_enabled = %v on a -spot daemon", out["spot_enabled"])
	}
	if got, _ := out["default_max_cost_usd"].(float64); got != 25 {
		t.Fatalf("default_max_cost_usd = %v, want 25", got)
	}
	prices, _ := out["prices"].([]any)
	if len(prices) != len(disarcloud.Catalog()) {
		t.Fatalf("%d price rows, want one per catalog type (%d)", len(prices), len(disarcloud.Catalog()))
	}
	for _, p := range prices {
		row := p.(map[string]any)
		od := row["on_demand_usd"].(float64)
		res := row["reserved_usd"].(float64)
		spot := row["spot_expected_usd"].(float64)
		if !(spot < res && res < od) {
			t.Fatalf("%v: tier prices not ordered spot %v < reserved %v < on-demand %v",
				row["type"], spot, res, od)
		}
	}
}

func TestCostEndpointDefaultsOff(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/cost")
	if err != nil {
		t.Fatal(err)
	}
	out := decodeJSON[map[string]any](t, resp)
	if out["spot_enabled"] != false {
		t.Fatalf("spot_enabled = %v without -spot", out["spot_enabled"])
	}
	if _, present := out["default_max_cost_usd"]; present {
		t.Fatal("default_max_cost_usd present on an unbounded daemon")
	}
}

func TestSubmitBudgetRejectedStructured(t *testing.T) {
	srv := newCostTestServer(t, nil, 0)

	job := smallJob()
	job["budget"] = 0.001 // below one billing hour of the cheapest node
	resp := postJSON(t, srv.URL+"/v1/jobs", job)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit status %d, want 400", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		// A budget rejection is not backpressure: retrying the same request
		// can never succeed, so the header would mislead clients into a loop.
		t.Fatalf("budget rejection carries Retry-After %q", ra)
	}
	body := decodeJSON[map[string]any](t, resp)
	cheapest, _ := body["cheapest_usd"].(float64)
	if cheapest <= 0.001 {
		t.Fatalf("cheapest_usd %v missing or not above the budget", body["cheapest_usd"])
	}
	if got, _ := body["max_cost_usd"].(float64); got != 0.001 {
		t.Fatalf("max_cost_usd = %v, want 0.001", body["max_cost_usd"])
	}
	if body["error"] == "" {
		t.Fatal("rejection body without an error message")
	}

	// The figure in the body is actionable: resubmitting above it succeeds,
	// and the result carries the money fields.
	job["budget"] = cheapest * 3
	resp = postJSON(t, srv.URL+"/v1/jobs", job)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("adequate-budget submit status %d, want 202", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	var res resultJSON
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Deploy.Tier == "" {
		t.Fatal("result deploy record without a tier")
	}
	if res.Cost.Jobs != 1 || res.Cost.BilledUSD <= 0 || res.Cost.BilledUSD > job["budget"].(float64) {
		t.Fatalf("cost report %+v vs budget %v", res.Cost, job["budget"])
	}
}

func TestSubmitCampaignBudgetRejectedStructured(t *testing.T) {
	srv := newCostTestServer(t, nil, 0)

	job := smallJob()
	job["budget"] = 0.01
	resp := postJSON(t, srv.URL+"/v1/campaigns", job)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("campaign submit status %d, want 400", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("campaign budget rejection carries Retry-After %q", ra)
	}
	body := decodeJSON[map[string]any](t, resp)
	// The campaign rejection is sized for all eight jobs, so the cheapest
	// figure is the whole-campaign floor, well above a single job's.
	if cheapest, _ := body["cheapest_usd"].(float64); cheapest <= 0.01 {
		t.Fatalf("campaign cheapest_usd %v not above the budget", body["cheapest_usd"])
	}
}

func TestSubmitTierAndBudgetValidation(t *testing.T) {
	srv, _ := newTestServer(t)

	job := smallJob()
	job["tier"] = "preemptible"
	resp := postJSON(t, srv.URL+"/v1/jobs", job)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tier status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	job = smallJob()
	job["budget"] = -1.0
	resp = postJSON(t, srv.URL+"/v1/jobs", job)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative budget status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// An absurd budget clamps to the request ceiling instead of failing.
	job = smallJob()
	job["budget"] = 1e12
	resp = postJSON(t, srv.URL+"/v1/jobs", job)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("huge budget status %d, want 202 (clamped)", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSubmitSpotTierRunsAndReportsSavings(t *testing.T) {
	srv := newCostTestServer(t, nil, 0)

	job := smallJob()
	job["tier"] = "any"
	job["epsilon"] = 0.0
	job["tmax_seconds"] = 3600.0
	resp := postJSON(t, srv.URL+"/v1/jobs", job)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("spot submit status %d, want 202", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	var res resultJSON
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Deploy.Tier != "spot" {
		t.Fatalf("generous deadline with all tiers picked %q, want spot", res.Deploy.Tier)
	}
	if !(res.Deploy.BilledUSD < res.Deploy.OnDemandUSD) {
		t.Fatalf("spot bill %v not below on-demand counterfactual %v",
			res.Deploy.BilledUSD, res.Deploy.OnDemandUSD)
	}

	// The service-lifetime totals on /v1/cost reflect the job.
	resp, err = http.Get(srv.URL + "/v1/cost")
	if err != nil {
		t.Fatal(err)
	}
	out := decodeJSON[map[string]any](t, resp)
	totals := out["totals"].(map[string]any)
	if jobs, _ := totals["jobs"].(float64); jobs != 1 {
		t.Fatalf("cost totals cover %v jobs, want 1", totals["jobs"])
	}
	if savings, _ := totals["savings_usd"].(float64); savings <= 0 {
		t.Fatalf("spot job recorded no savings: %+v", totals)
	}
}
