package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"disarcloud"
)

// proxyTestServer mirrors newTestServer but configures a daemon-level
// default proxy spec, like the -proxy flag does.
func proxyTestServer(t *testing.T, def *disarcloud.ProxySpec, opts ...disarcloud.ServiceOption) (*httptest.Server, *disarcloud.Service) {
	t.Helper()
	d, err := disarcloud.NewDeployer(2016)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(svc, d, 2016, def, nil, nil, 0))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

// TestProxyJobOverHTTP submits a job with an explicit proxy section and
// checks the serving telemetry flows back through both the result body and
// the GET /v1/proxy aggregate.
func TestProxyJobOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, disarcloud.WithWorkers(2))

	// A daemon without -proxy reports the tier disabled and idle.
	resp, err := http.Get(srv.URL + "/v1/proxy")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[map[string]any](t, resp)
	if st["enabled"] != false {
		t.Fatalf("fresh daemon reports proxy enabled: %v", st)
	}
	if jobs, _ := st["jobs"].(float64); jobs != 0 {
		t.Fatalf("fresh daemon reports %v proxied jobs", st["jobs"])
	}

	body := smallJob()
	body["proxy"] = map[string]any{"train_outer": 32, "error_budget": 0.05, "model": "forest"}
	resp = postJSON(t, srv.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("proxied submit status %d, want 202", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]

	resp, err = http.Get(srv.URL + "/v1/jobs/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d, want 200", resp.StatusCode)
	}
	res := decodeJSON[map[string]any](t, resp)
	proxy, ok := res["proxy"].(map[string]any)
	if !ok {
		t.Fatalf("proxied result carries no proxy block: %v", res)
	}
	if eb, _ := proxy["error_budget"].(float64); eb != 0.05 {
		t.Fatalf("result error_budget %v, want 0.05", proxy["error_budget"])
	}
	totals, _ := proxy["totals"].(map[string]any)
	if totals == nil {
		t.Fatal("proxy block has no totals")
	}
	evaluated, _ := totals["evaluated"].(float64)
	proxied, _ := totals["proxied"].(float64)
	escalated, _ := totals["escalated"].(float64)
	if evaluated != 20 || proxied+escalated != evaluated {
		t.Fatalf("inconsistent serving totals: %v", totals)
	}
	if hr, _ := proxy["hit_rate"].(float64); hr < 0 || hr > 1 {
		t.Fatalf("hit_rate %v", proxy["hit_rate"])
	}
	if blocks, _ := proxy["blocks"].(map[string]any); len(blocks) == 0 {
		t.Fatal("proxy block has no per-block stats")
	}

	// The service aggregate reflects the one proxied job.
	resp, err = http.Get(srv.URL + "/v1/proxy")
	if err != nil {
		t.Fatal(err)
	}
	st = decodeJSON[map[string]any](t, resp)
	if jobs, _ := st["jobs"].(float64); jobs != 1 {
		t.Fatalf("proxy telemetry jobs %v, want 1", st["jobs"])
	}
	totals, _ = st["totals"].(map[string]any)
	if ev, _ := totals["evaluated"].(float64); ev != 20 {
		t.Fatalf("aggregate evaluated %v, want 20", totals["evaluated"])
	}
}

// TestProxyServerDefault checks the -proxy flag path: a job body without a
// proxy section inherits the daemon default, and GET /v1/proxy publishes the
// resolved default spec.
func TestProxyServerDefault(t *testing.T) {
	def := &disarcloud.ProxySpec{TrainOuter: 24, ErrorBudget: 0.1, Model: disarcloud.ProxyModelLinear}
	srv, _ := proxyTestServer(t, def, disarcloud.WithWorkers(2))

	resp, err := http.Get(srv.URL + "/v1/proxy")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[map[string]any](t, resp)
	if st["enabled"] != true {
		t.Fatalf("daemon with default proxy reports disabled: %v", st)
	}
	d, _ := st["default"].(map[string]any)
	if d == nil {
		t.Fatal("enabled daemon publishes no default spec")
	}
	if d["model"] != "linear" || d["train_outer"].(float64) != 24 || d["error_budget"].(float64) != 0.1 {
		t.Fatalf("published default %v", d)
	}
	// Zero knobs are published resolved, not raw.
	if d["escalation_cap"].(float64) != 0.25 {
		t.Fatalf("default escalation_cap %v, want resolved 0.25", d["escalation_cap"])
	}

	resp = postJSON(t, srv.URL+"/v1/jobs", smallJob())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]
	resp, err = http.Get(srv.URL + "/v1/jobs/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	res := decodeJSON[map[string]any](t, resp)
	proxy, ok := res["proxy"].(map[string]any)
	if !ok {
		t.Fatal("default-proxied job result carries no proxy block")
	}
	if eb, _ := proxy["error_budget"].(float64); eb != 0.1 {
		t.Fatalf("inherited error_budget %v, want 0.1", proxy["error_budget"])
	}
}

// TestProxyRequestValidation checks out-of-range proxy sections are rejected
// with 400 before any work starts, and a positive-but-tiny training sample
// is clamped up to the usable minimum instead of failing the job.
func TestProxyRequestValidation(t *testing.T) {
	srv, svc := newTestServer(t, disarcloud.WithWorkers(1))

	bad := []map[string]any{
		{"error_budget": 2},
		{"error_budget": -0.5},
		{"escalation_cap": 1.5},
		{"train_outer": -1},
		{"train_outer": 100000},
		{"train_inner": 100000},
		{"model": "nope"},
		{"degree": 9},
	}
	for _, p := range bad {
		body := smallJob()
		body["proxy"] = p
		resp := postJSON(t, srv.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("proxy section %v accepted with status %d, want 400", p, resp.StatusCode)
		}
		if msg := decodeJSON[map[string]string](t, resp); msg["error"] == "" {
			t.Fatalf("proxy section %v rejected without an error message", p)
		}
	}
	if got := len(svc.Jobs()); got != 0 {
		t.Fatalf("invalid proxy requests left %d job records", got)
	}

	// train_outer 5 is positive but below the usable minimum: the daemon
	// clamps instead of rejecting, and the stats prove the clamp took.
	body := smallJob()
	body["proxy"] = map[string]any{"train_outer": 5}
	resp := postJSON(t, srv.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("clampable proxy section rejected with %d", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	res := decodeJSON[map[string]any](t, resp)
	proxy, ok := res["proxy"].(map[string]any)
	if !ok {
		t.Fatal("clamped proxy job carries no proxy block")
	}
	totals, _ := proxy["totals"].(map[string]any)
	if to, _ := totals["train_outer"].(float64); to != float64(disarcloud.MinProxyTrainOuter) {
		t.Fatalf("clamped training sample %v, want %d", totals["train_outer"], disarcloud.MinProxyTrainOuter)
	}
}
