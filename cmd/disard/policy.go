package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"disarcloud"
)

// maxPolicyBytes bounds the -policy-config file: a policy section is a few
// lines of JSON, so anything near the cap is not one.
const maxPolicyBytes = 1 << 20

// policyRequest is the daemon's "policy" config section: which scaling
// policy the control loop runs and the knobs that belong to it. It arrives
// either from the -policy-config JSON file or assembled from the -policy /
// -qtable flags (flags override file fields).
type policyRequest struct {
	// Policy selects the decision layer: "reactive", "hybrid" or "learned".
	// Empty keeps the legacy flag behavior (-forecast selects hybrid).
	Policy string `json:"policy,omitempty"`
	// QTable is the trained artifact path for the learned policy.
	QTable string `json:"qtable,omitempty"`
	// Headroom is the hybrid planner's multiplier (0 = forecast default);
	// rejected for other policies.
	Headroom float64 `json:"headroom,omitempty"`
}

// decodePolicyRequest decodes one policy section, strictly: the section
// selects the decision layer a daemon ships with, so a typoed field must
// fail loudly instead of silently running the default it fell back to.
func decodePolicyRequest(data []byte) (policyRequest, error) {
	var req policyRequest
	if len(data) > maxPolicyBytes {
		return req, fmt.Errorf("policy config exceeds %d bytes", maxPolicyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("decode policy config: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return req, fmt.Errorf("decode policy config: trailing data after the JSON object")
	}
	if err := req.validate(); err != nil {
		return req, err
	}
	return req, nil
}

// validate checks the section's internal consistency; the daemon-level
// interactions (-elastic, -forecast) are checked in run.
func (r policyRequest) validate() error {
	switch r.Policy {
	case "", "reactive", "hybrid", "learned":
	default:
		return fmt.Errorf("unknown policy %q (want reactive, hybrid or learned)", r.Policy)
	}
	if r.QTable != "" && r.Policy != "learned" {
		return fmt.Errorf("a qtable only drives the learned policy (got policy %q)", r.Policy)
	}
	if r.Policy == "learned" && r.QTable == "" {
		return fmt.Errorf("the learned policy needs a qtable path")
	}
	if r.Headroom != 0 && r.Policy != "hybrid" {
		return fmt.Errorf("headroom only tunes the hybrid policy (got policy %q)", r.Policy)
	}
	if r.Headroom < 0 {
		return fmt.Errorf("headroom %g must be non-negative", r.Headroom)
	}
	return nil
}

// loadPolicyConfig reads and decodes a -policy-config file. The returned
// request's QTable path, when relative, is resolved against the config
// file's own directory — the file names its artifact, wherever the daemon
// is started from.
func loadPolicyConfig(path string) (policyRequest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return policyRequest{}, err
	}
	req, err := decodePolicyRequest(data)
	if err != nil {
		return policyRequest{}, fmt.Errorf("%s: %w", path, err)
	}
	if req.QTable != "" && !filepath.IsAbs(req.QTable) {
		req.QTable = filepath.Join(filepath.Dir(path), req.QTable)
	}
	return req, nil
}

// loadQTable loads and validates the learned policy's artifact.
func loadQTable(path string) (*disarcloud.QTable, error) {
	t, err := disarcloud.LoadQTable(path)
	if err != nil {
		return nil, fmt.Errorf("load qtable: %w", err)
	}
	return t, nil
}
