package main

// Cluster wiring for the daemon: the worker process mode (-join), the
// self-exec launcher behind elastic process scaling, and the
// multi-coordinator state (consistent-hash job routing + KB gossip).

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"disarcloud"
)

// routedHeader marks a submission already forwarded by its ring owner's
// peer, so routing never loops.
const routedHeader = "X-Disard-Routed"

// runWorker is the -join process mode: a pure computing unit that serves
// the worker API and registers with the coordinator. It blocks until
// interrupted.
func runWorker(addr, coordinatorURL, name string, slots int) error {
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := disarcloud.NewClusterWorker(name, slots)
	if err := w.Start(addr); err != nil {
		return err
	}
	defer w.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := joinWithRetry(ctx, w, coordinatorURL); err != nil {
		return err
	}
	log.Printf("worker %s serving on %s, joined %s (%d slots)", name, w.Addr(), coordinatorURL, slots)
	<-ctx.Done()
	return nil
}

// joinWithRetry registers with the coordinator, retrying with backoff — a
// launcher-spawned worker typically races the coordinator's own listener
// at boot.
func joinWithRetry(ctx context.Context, w *disarcloud.ClusterWorker, url string) error {
	var err error
	for wait := 100 * time.Millisecond; wait <= 5*time.Second; wait *= 2 {
		if err = w.Join(ctx, url); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
	return fmt.Errorf("join %s: %w", url, err)
}

// execLauncher starts worker processes by re-executing this binary with
// -join — the hook elastic process scaling pulls on.
type execLauncher struct {
	joinURL string
	slots   int
}

func (l *execLauncher) StartWorker() (func(), error) {
	cmd := exec.Command(os.Args[0],
		"-join", l.joinURL,
		"-worker-slots", strconv.Itoa(l.slots),
		"-addr", "127.0.0.1:0")
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() { _ = cmd.Wait(); close(done) }()
	stop := func() {
		_ = cmd.Process.Signal(os.Interrupt)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
	return stop, nil
}

// selfJoinURL derives the URL launcher-spawned workers join from the
// coordinator's listen address (":8080" listens on every interface, so the
// loopback reaches it).
func selfJoinURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// clusterState is the server's cluster-mode attachment: the coordinator
// plus, when peers are configured, the consistent-hash ring submissions are
// routed on.
type clusterState struct {
	coord  *disarcloud.ClusterCoordinator
	self   string
	peers  []string
	ring   *disarcloud.ClusterRing
	client *http.Client
}

// newClusterState builds the attachment. Routing activates only when both a
// self URL and at least one distinct peer are configured.
func newClusterState(coord *disarcloud.ClusterCoordinator, self string, peers []string) *clusterState {
	cs := &clusterState{
		coord:  coord,
		self:   strings.TrimRight(strings.TrimSpace(self), "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" && p != cs.self {
			cs.peers = append(cs.peers, p)
		}
	}
	if cs.self != "" && len(cs.peers) > 0 {
		cs.ring = disarcloud.NewClusterRing(append(append([]string{}, cs.peers...), cs.self), 0)
	}
	return cs
}

// owner returns the coordinator a submission belongs to. The key is a hash
// of the request body, so identical submissions always land on the same
// coordinator regardless of which one received them.
func (cs *clusterState) owner(body []byte) string {
	if cs.ring == nil {
		return ""
	}
	h := fnv.New64a()
	_, _ = h.Write(body)
	return cs.ring.Owner(fmt.Sprintf("job/%016x", h.Sum64()))
}

// forward re-submits the body to the owning coordinator and relays its
// reply. It reports false when the owner is unreachable, in which case the
// caller handles the submission locally — availability over strict
// sharding.
func (cs *clusterState) forward(w http.ResponseWriter, url string, body []byte) bool {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(routedHeader, "1")
	resp, err := cs.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(routedHeader+"-To", url)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, io.LimitReader(resp.Body, 1<<20))
	return true
}

// readRouted reads a submit body and, in a multi-coordinator cluster,
// forwards it to its consistent-hash owner when that is a peer. It returns
// handle=false when the response has already been written (bad body or
// forwarded reply).
func (s *server) readRouted(w http.ResponseWriter, r *http.Request, path string) (body []byte, handle bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return nil, false
	}
	cs := s.cluster
	if cs == nil || cs.ring == nil || r.Header.Get(routedHeader) != "" {
		return body, true
	}
	owner := cs.owner(body)
	if owner == "" || owner == cs.self {
		return body, true
	}
	if cs.forward(w, owner+path, body) {
		return nil, false
	}
	return body, true
}

// clusterStatusJSON is the GET /v1/cluster reply.
type clusterStatusJSON struct {
	disarcloud.ClusterStatus
	Self  string   `json:"self,omitempty"`
	Peers []string `json:"peers,omitempty"`
}

func (s *server) clusterStatus(w http.ResponseWriter, _ *http.Request) {
	cs := s.cluster
	if cs == nil || cs.coord == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("not running in cluster mode (-cluster)"))
		return
	}
	writeJSON(w, http.StatusOK, clusterStatusJSON{
		ClusterStatus: cs.coord.Status(),
		Self:          cs.self,
		Peers:         cs.peers,
	})
}

// gossipKB periodically merges every peer coordinator's knowledge base into
// the local one, so each node's predictor trains on the whole cluster's
// measurements.
func gossipKB(ctx context.Context, coord *disarcloud.ClusterCoordinator, peers []string, every time.Duration) {
	if len(peers) == 0 || every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			added, err := coord.SyncKB(ctx, peers)
			if added > 0 {
				log.Printf("kb gossip: merged %d samples from %d peers", added, len(peers))
			}
			if err != nil && ctx.Err() == nil {
				log.Printf("kb gossip: %v", err)
			}
		}
	}
}
