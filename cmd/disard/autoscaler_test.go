package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"disarcloud"
)

// TestAutoscalerStatusEndpoint checks /v1/autoscaler on an elastic daemon:
// gauges present, bounds reported, and — after a paced burst — scaling
// decisions with reasons.
func TestAutoscalerStatusEndpoint(t *testing.T) {
	srv, svc := newTestServer(t,
		disarcloud.WithWorkers(1), disarcloud.WithQueueDepth(64),
		disarcloud.WithElastic(disarcloud.ElasticConfig{
			MinWorkers: 1, MaxWorkers: 4,
			ScaleUpCooldown:   time.Millisecond,
			ScaleDownCooldown: time.Hour, // hold the grown pool for the assertions
			ShrinkStableFor:   time.Hour,
		}),
		disarcloud.WithElasticTick(2*time.Millisecond),
	)

	resp, err := http.Get(srv.URL + "/v1/autoscaler")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[autoscalerJSON](t, resp)
	if !st.Enabled || st.Workers != 1 || st.MinWorkers != 1 || st.MaxWorkers != 4 {
		t.Fatalf("initial autoscaler status = %+v", st)
	}

	// A paced burst: grow the pool, then re-read the endpoint.
	var ids []string
	for i := 0; i < 6; i++ {
		job := smallJob()
		job["seed"] = 1000 + i
		job["pace_factor"] = 3e-4
		resp := postJSON(t, srv.URL+"/v1/jobs", job)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d = %d", i, resp.StatusCode)
		}
		ids = append(ids, decodeJSON[map[string]string](t, resp)["id"])
	}
	for _, id := range ids {
		if _, err := svc.Result(context.Background(), disarcloud.JobID(id)); err != nil {
			t.Fatal(err)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/autoscaler")
	if err != nil {
		t.Fatal(err)
	}
	st = decodeJSON[autoscalerJSON](t, resp)
	if len(st.Recent) == 0 {
		t.Fatalf("no scaling decisions after the burst: %+v", st)
	}
	grow := st.Recent[0]
	if grow.Target <= grow.From || grow.Reason == "" {
		t.Fatalf("first decision is not a reasoned grow: %+v", grow)
	}
	if st.Workers <= 1 {
		t.Fatalf("pool did not grow under the burst: %+v", st)
	}
}

// TestAutoscalerEventStream checks /v1/autoscaler/events delivers NDJSON
// decisions while a burst drives the pool.
func TestAutoscalerEventStream(t *testing.T) {
	srv, _ := newTestServer(t,
		disarcloud.WithWorkers(1), disarcloud.WithQueueDepth(64),
		disarcloud.WithElastic(disarcloud.ElasticConfig{
			MinWorkers: 1, MaxWorkers: 4,
			ScaleUpCooldown:   time.Millisecond,
			ScaleDownCooldown: time.Hour,
			ShrinkStableFor:   time.Hour,
		}),
		disarcloud.WithElasticTick(2*time.Millisecond),
	)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/autoscaler/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("event stream content type = %q", ct)
	}

	for i := 0; i < 6; i++ {
		job := smallJob()
		job["seed"] = 2000 + i
		job["pace_factor"] = 3e-4
		if resp := postJSON(t, srv.URL+"/v1/jobs", job); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d = %d", i, resp.StatusCode)
		}
	}

	line, err := bufio.NewReader(resp.Body).ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading first event: %v", err)
	}
	ev := decodeJSONBytes[scalingEventJSON](t, line)
	if ev.Target <= ev.From || ev.Reason == "" {
		t.Fatalf("streamed event is not a reasoned grow: %+v", ev)
	}
}

// TestAdmissionRejectionHTTP drives the daemon with admission control and a
// saturating backlog: the tight-deadline submission gets 503 with a
// Retry-After estimate, and the fixed-seed valuations are untouched.
func TestAdmissionRejectionHTTP(t *testing.T) {
	est := disarcloud.EstimatorFunc(func(spec disarcloud.SimulationSpec) (float64, bool) {
		return 10, true
	})
	srv, _ := newTestServer(t,
		disarcloud.WithWorkers(1), disarcloud.WithQueueDepth(64),
		disarcloud.WithAdmissionControl(est),
	)

	// Five paced jobs with loose deadlines build a ~50s estimated backlog.
	for i := 0; i < 5; i++ {
		job := smallJob()
		job["seed"] = 3000 + i
		job["pace_factor"] = 3e-4
		if resp := postJSON(t, srv.URL+"/v1/jobs", job); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("backlog submit %d = %d", i, resp.StatusCode)
		}
	}
	tight := smallJob()
	tight["seed"] = 3100
	tight["tmax_seconds"] = 15
	resp := postJSON(t, srv.URL+"/v1/jobs", tight)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tight-deadline submit = %d, want 503", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	body := decodeJSON[map[string]string](t, resp)
	if body["error"] == "" {
		t.Fatal("admission rejection carries no error body")
	}

	// A deadline below the job's own 10s estimate is infeasible at any
	// load: 400, not 503, and no Retry-After inviting pointless retries.
	infeasible := smallJob()
	infeasible["seed"] = 3200
	infeasible["tmax_seconds"] = 5
	resp = postJSON(t, srv.URL+"/v1/jobs", infeasible)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("self-infeasible submit = %d, want 400", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("self-infeasible rejection carries Retry-After %q", ra)
	}
	resp.Body.Close()
}

// decodeJSONBytes decodes one NDJSON line.
func decodeJSONBytes[T any](t *testing.T, data []byte) T {
	t.Helper()
	var out T
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}
