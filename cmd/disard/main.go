// Command disard is the DISAR valuation daemon: the disarcloud.Service
// exposed over HTTP/JSON. It serves a stream of regulatory valuation
// requests against one shared self-optimizing deployer, so every completed
// job's measured execution time improves the deploy predictions of the
// next.
//
// Endpoints:
//
//	POST   /v1/jobs                    submit a valuation job (JSON body below)
//	GET    /v1/jobs                    list all jobs
//	GET    /v1/jobs/{id}               job status snapshot
//	GET    /v1/jobs/{id}/result        job outcome; ?wait=1 blocks until terminal
//	GET    /v1/jobs/{id}/progress      NDJSON stream of outer-path progress events
//	DELETE /v1/jobs/{id}               cancel a job
//	POST   /v1/campaigns               submit a Solvency II stress campaign
//	GET    /v1/campaigns               list all campaigns
//	GET    /v1/campaigns/{id}          campaign status snapshot
//	GET    /v1/campaigns/{id}/result   per-module delta-BEL + aggregated SCR; ?wait=1 blocks
//	DELETE /v1/campaigns/{id}          cancel every job of a campaign
//	GET    /v1/autoscaler              elastic control-plane status + recent scaling decisions
//	GET    /v1/autoscaler/events       NDJSON stream of scaling decisions
//	GET    /v1/forecast                proactive-provisioning status (model scoreboard + planner target)
//	GET    /v1/proxy                   LSMC proxy-tier status (default spec + hit-rate/error telemetry)
//	GET    /v1/cost                    cost plane: purchasing defaults, lifetime spend, per-tier price card
//	POST   /v1/loadgen/trace           generate a seeded synthetic load trace from a spec
//	GET    /v1/cluster                 cluster status: workers, slices, fault-path counters (-cluster)
//	POST   /v1/join                    worker registration (-cluster; called by disard -join)
//	POST   /v1/heartbeat               worker liveness beat (-cluster)
//	GET    /v1/kb                      knowledge-base export for peer gossip (-cluster)
//	GET    /healthz                    liveness + knowledge-base size
//
// With -cluster the daemon is a cluster coordinator: valuations are
// scattered as outer-path slices across worker processes started with
// `disard -join <coordinator-url>` (or self-spawned via -spawn-workers; with
// -elastic the controller's worker target also scales the process fleet). A
// worker lost mid-run has its range re-sliced onto the survivors with
// bit-identical results. With -peers plus -self, submissions are routed to
// their consistent-hash owner among the peer coordinators and knowledge
// bases gossip every -gossip-every.
//
// With -elastic the worker pool autoscales between -min-workers and
// -max-workers from queue/backlog pressure; with -admission, submissions
// whose predicted completion time busts their own tmax_seconds are rejected
// with 503 and a Retry-After estimate of the backlog drain time. With
// -forecast (requires -elastic) the control loop additionally records
// per-interval demand telemetry, keeps the lowest-sMAPE forecast model
// fitted on it, and feed-forwards the predicted arrival rate times the
// KB-estimated job runtime into the worker target — the hybrid policy
// applies the maximum of the reactive and proactive targets.
//
// With -policy the daemon names its scaling decision layer explicitly:
// "reactive" (the elastic controller alone), "hybrid" (equivalent to
// -forecast), or "learned" — a Q-table trained offline by cmd/qtrain
// (internal/rl) and loaded from -qtable. A learned daemon takes its
// unflagged -min-workers/-max-workers from the table's own spec. The same
// selection can live in a JSON "policy" config section loaded with
// -policy-config ({"policy": "learned", "qtable": "qtable_v1.json"});
// explicit flags override the file's fields. GET /v1/autoscaler reports
// the active policy and its hyperparameters either way.
//
// With -check <file> the daemon does not serve at all: it model-checks the
// scaling policy described by the JSON request file against its SLA bound
// (exact value iteration over the policy x arrival-model product chain, see
// internal/verify), prints the report and exits non-zero on a violation.
// CI runs it against testdata/verify_default.json to gate the shipped
// elastic configuration and testdata/verify_learned.json to gate the
// shipped Q-table artifact; a learned request names its qtable path,
// resolved relative to the request file's directory.
//
// Trace body for POST /v1/loadgen/trace (defaults in parentheses):
//
//	{
//	  "kind":       "mixed", // diurnal / bursty / ramp / flash / mixed / weekly
//	  "intervals":  120,     // trace length
//	  "seed":       0,       // 0 = server-assigned
//	  "base_rate":  2,       // mean arrivals per interval, calm regime
//	  "peak_rate":  8,       // high regime (0 = 4x base)
//	  "rates":      false    // include the deterministic rate profile
//	}
//
// Submit body (defaults in parentheses):
//
//	{
//	  "portfolio":    0,      // archetype 0..2: savings / mixed / annuity
//	  "contracts":    20,     // representative contracts to generate
//	  "fund_assets":  6,      // segregated-fund asset sleeves
//	  "outer":        200,    // n_P real-world scenarios
//	  "inner":        10,     // n_Q risk-neutral scenarios per outer path
//	  "tmax_seconds": 900,    // Solvency II deadline
//	  "max_nodes":    8,      // Algorithm 1 node bound
//	  "epsilon":      0.05,   // exploration probability
//	  "max_workers":  8,      // in-process valuation workers (0 = derive)
//	  "seed":         42,     // valuation seed (0 = server-assigned)
//	  "pace_factor":  0,      // wall-clock occupancy per simulated second (load testing)
//	  "budget":       0,      // max billed USD; explicit 0 lifts the -max-cost default
//	  "tier":         "",     // purchasing tiers: on-demand / reserved / spot / any ("" = daemon default)
//	  "proxy": {              // optional: route through the LSMC proxy serving tier
//	    "train_outer":    128,     // full nested valuations sampled for training
//	    "train_inner":    0,       // inner paths per training valuation (0 = job's inner)
//	    "error_budget":   0.05,    // relative band tolerance before escalation
//	    "escalation_cap": 0.25,    // max fraction of paths escalated to full MC
//	    "model":          "forest",// forest / poly / linear / mlp
//	    "degree":         2        // polynomial basis degree (poly model)
//	  }
//	}
//
// Campaign bodies accept the same fields plus "no_reuse" (disable
// scenario-set reuse) and "longevity" (add the longevity module); a proxy
// section on the base routes every shock module through the proxy tier.
//
// With -proxy, jobs that do not carry their own proxy section default to the
// proxy tier with -proxy-budget, -proxy-sample and -proxy-model; GET
// /v1/proxy reports the tier's aggregate hit-rate and error telemetry either
// way.
//
// With -spot, jobs that do not pick their own "tier" may be placed on
// reserved or revocable spot capacity whenever the deadline affords the
// revocation risk; with -max-cost every job defaults to that billed-dollar
// budget. A budget no tier mix can meet is rejected up front with 400 and a
// body naming the cheapest feasible cost — no Retry-After, because waiting
// does not make the same budget sufficient. GET /v1/cost reports the price
// card and the service-lifetime spend.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"disarcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "disard:", err)
		os.Exit(1)
	}
}

// flagWasSet reports whether the named flag was given explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Uint64("seed", 2016, "root seed of the shared deployer")
		workers   = flag.Int("workers", 4, "concurrent valuations (initial pool when -elastic)")
		queue     = flag.Int("queue", 64, "submit queue depth")
		kbPath    = flag.String("kb", "", "knowledge-base JSON to load at boot and save at shutdown")
		elastic   = flag.Bool("elastic", false, "autoscale the worker pool between -min-workers and -max-workers")
		minW      = flag.Int("min-workers", 0, "elastic pool floor (0 = initial -workers)")
		maxW      = flag.Int("max-workers", 16, "elastic pool ceiling")
		admission = flag.Bool("admission", false, "reject jobs whose predicted completion busts their tmax (503 + Retry-After)")
		fcast     = flag.Bool("forecast", false, "proactive provisioning: feed-forward the forecast demand into the worker target (requires -elastic)")
		fcWindow  = flag.Int("forecast-window", 0, "telemetry ring capacity in control ticks (0 = default)")
		fcHead    = flag.Float64("forecast-headroom", 0, "planner headroom factor >= 1 (0 = default)")
		fcSeason  = flag.Int("forecast-season", 0, "seasonality hint in control ticks for the Holt-Winters candidate (0 = no seasonal model)")
		policySel = flag.String("policy", "", "scaling policy: reactive, hybrid (implies -forecast) or learned (requires -qtable); all require -elastic")
		qtable    = flag.String("qtable", "", "trained Q-table artifact for -policy learned")
		policyCfg = flag.String("policy-config", "", "JSON file with the \"policy\" config section (-policy/-qtable override its fields)")
		proxy     = flag.Bool("proxy", false, "route jobs without their own proxy section through the LSMC proxy serving tier")
		proxyBud  = flag.Float64("proxy-budget", 0, "default proxy relative error budget in (0,1] (0 = proxyval default)")
		proxySamp = flag.Int("proxy-sample", 0, "default proxy training-sample size (0 = proxyval default)")
		proxyMod  = flag.String("proxy-model", "", "default proxy model family: forest / poly / linear / mlp (empty = forest)")
		spot      = flag.Bool("spot", false, "offer reserved and revocable spot capacity to jobs without their own tier field")
		maxCost   = flag.Float64("max-cost", 0, "default per-job budget in USD; infeasible budgets are rejected up front (0 = unlimited)")

		join        = flag.String("join", "", "worker mode: register with this coordinator base URL and execute shipped slices")
		workerName  = flag.String("worker-name", "", "worker identity on the scenario ring (default <host>-<pid>)")
		workerSlots = flag.Int("worker-slots", 2, "slice concurrency a worker advertises")
		clusterMode = flag.Bool("cluster", false, "coordinator mode: distribute valuations across joined worker processes")
		spawn       = flag.Int("spawn-workers", 0, "worker processes to self-spawn at boot (requires -cluster)")
		peersFlag   = flag.String("peers", "", "comma-separated peer coordinator base URLs (consistent-hash job routing + KB gossip)")
		selfURL     = flag.String("self", "", "this coordinator's base URL as peers reach it (required with -peers)")
		gossipEvery = flag.Duration("gossip-every", 30*time.Second, "knowledge-base sync cadence with -peers")

		check = flag.String("check", "", "model-check the scaling policy in this JSON request file against its SLA and exit (no server)")
	)
	flag.Parse()
	if *check != "" {
		return runCheck(*check, os.Stdout)
	}
	pol := policyRequest{}
	if *policyCfg != "" {
		loaded, err := loadPolicyConfig(*policyCfg)
		if err != nil {
			return err
		}
		pol = loaded
	}
	if *policySel != "" {
		pol.Policy = *policySel
	}
	if *qtable != "" {
		pol.QTable = *qtable
	}
	if err := pol.validate(); err != nil {
		return err
	}
	var learnedTable *disarcloud.QTable
	switch pol.Policy {
	case "reactive":
		if !*elastic {
			return fmt.Errorf("-policy reactive requires -elastic")
		}
		if *fcast {
			return fmt.Errorf("-policy reactive conflicts with -forecast (forecast overlay IS the hybrid policy)")
		}
	case "hybrid":
		if !*elastic {
			return fmt.Errorf("-policy hybrid requires -elastic")
		}
		*fcast = true
		if pol.Headroom != 0 && !flagWasSet("forecast-headroom") {
			*fcHead = pol.Headroom
		}
	case "learned":
		if !*elastic {
			return fmt.Errorf("-policy learned requires -elastic")
		}
		if *fcast {
			return fmt.Errorf("-policy learned conflicts with -forecast (one decision layer at a time)")
		}
		t, err := loadQTable(pol.QTable)
		if err != nil {
			return err
		}
		learnedTable = t
		// The artifact knows the pool it was trained for; unflagged bounds
		// follow it so the policy is never boxed into bounds it never saw.
		if !flagWasSet("min-workers") {
			*minW = t.Spec.MinWorkers
		}
		if !flagWasSet("max-workers") {
			*maxW = t.Spec.MaxWorkers
		}
	}
	if *fcast && !*elastic {
		return fmt.Errorf("-forecast requires -elastic: the hybrid policy overlays the reactive controller")
	}
	if *maxCost < 0 || math.IsNaN(*maxCost) {
		return fmt.Errorf("-max-cost %v is not a non-negative dollar amount", *maxCost)
	}
	if *join != "" {
		if *clusterMode || *spawn > 0 || *peersFlag != "" {
			return fmt.Errorf("-join selects worker mode and excludes the coordinator flags")
		}
		// The default listen address belongs to the coordinator; a worker
		// that was not given its own takes an ephemeral loopback port so
		// several can share one machine.
		workerAddr := *addr
		if !flagWasSet("addr") {
			workerAddr = "127.0.0.1:0"
		}
		return runWorker(workerAddr, *join, *workerName, *workerSlots)
	}
	if !*clusterMode && (*spawn > 0 || *peersFlag != "" || *selfURL != "") {
		return fmt.Errorf("-spawn-workers/-peers/-self require -cluster")
	}
	var peers []string
	if *peersFlag != "" {
		if *selfURL == "" {
			return fmt.Errorf("-peers requires -self: the ring needs this coordinator's own URL")
		}
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	var defaultProxy *disarcloud.ProxySpec
	if *proxy {
		defaultProxy = &disarcloud.ProxySpec{
			TrainOuter:  *proxySamp,
			ErrorBudget: *proxyBud,
			Model:       *proxyMod,
		}
		if err := defaultProxy.Validate(); err != nil {
			return err
		}
	} else if *proxyBud != 0 || *proxySamp != 0 || *proxyMod != "" {
		return fmt.Errorf("-proxy-budget/-proxy-sample/-proxy-model require -proxy")
	}

	knowledge := disarcloud.NewKnowledgeBase()
	if *kbPath != "" {
		if k, err := disarcloud.LoadKnowledgeBase(*kbPath); err == nil {
			knowledge = k
			log.Printf("loaded knowledge base: %d samples", k.Len())
		} else {
			log.Printf("starting a fresh knowledge base (%v)", err)
		}
	}
	opts := []disarcloud.Option{disarcloud.WithKnowledgeBase(knowledge)}
	var coord *disarcloud.ClusterCoordinator
	if *clusterMode {
		coord = disarcloud.NewClusterCoordinator(disarcloud.ClusterConfig{
			KB:           knowledge,
			Launcher:     &execLauncher{joinURL: selfJoinURL(*addr), slots: *workerSlots},
			LocalWorkers: *workers,
		})
		opts = append(opts, disarcloud.WithBlockRunner(coord))
	}
	d, err := disarcloud.NewDeployer(*seed, opts...)
	if err != nil {
		return err
	}
	svcOpts := []disarcloud.ServiceOption{
		disarcloud.WithWorkers(*workers), disarcloud.WithQueueDepth(*queue),
	}
	if coord != nil && *elastic {
		// The elastic controller's worker target also scales the cluster's
		// launcher-managed worker processes.
		svcOpts = append(svcOpts, disarcloud.WithProcessScaler(coord.ProcessScaler()))
	}
	if *elastic {
		svcOpts = append(svcOpts, disarcloud.WithElastic(disarcloud.ElasticConfig{
			MinWorkers: *minW, MaxWorkers: *maxW,
		}))
	}
	if *admission {
		svcOpts = append(svcOpts, disarcloud.WithAdmissionControl(disarcloud.PredictorEstimator(d)))
	}
	if *fcast {
		svcOpts = append(svcOpts, disarcloud.WithForecast(disarcloud.ForecastConfig{
			Window:       *fcWindow,
			Headroom:     *fcHead,
			SeasonPeriod: *fcSeason,
		}))
	}
	if learnedTable != nil {
		svcOpts = append(svcOpts, disarcloud.WithLearnedPolicy(learnedTable))
	}
	svc, err := disarcloud.NewService(d, svcOpts...)
	if err != nil {
		return err
	}

	var cl *clusterState
	if coord != nil {
		cl = newClusterState(coord, *selfURL, peers)
	}
	var defaultTiers []disarcloud.Tier
	if *spot {
		defaultTiers = disarcloud.AllTiers()
	}
	srv := &http.Server{Addr: *addr, Handler: newHandler(svc, d, *seed, defaultProxy, cl, defaultTiers, *maxCost)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("disard listening on %s (%d workers)", *addr, *workers)
	if coord != nil {
		if *spawn > 0 {
			coord.ScaleTo(*spawn)
			log.Printf("cluster: spawned %d worker processes", *spawn)
		}
		go gossipKB(ctx, coord, peers, *gossipEvery)
	}

	select {
	case err := <-errCh:
		svc.Close()
		if coord != nil {
			coord.StopWorkers()
		}
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	// Close the service first: it cancels live jobs, so handlers blocked on
	// ?wait=1 results or progress streams return and their connections go
	// idle — otherwise Shutdown would always burn its full deadline.
	svc.Close()
	if coord != nil {
		coord.StopWorkers()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	if *kbPath != "" {
		if err := d.KB().SaveFile(*kbPath); err != nil {
			return err
		}
		log.Printf("knowledge base saved to %s (%d samples)", *kbPath, d.KB().Len())
	}
	return nil
}
