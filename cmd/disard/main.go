// Command disard is the DISAR valuation daemon: the disarcloud.Service
// exposed over HTTP/JSON. It serves a stream of regulatory valuation
// requests against one shared self-optimizing deployer, so every completed
// job's measured execution time improves the deploy predictions of the
// next.
//
// Endpoints:
//
//	POST   /v1/jobs               submit a valuation job (JSON body below)
//	GET    /v1/jobs               list all jobs
//	GET    /v1/jobs/{id}          job status snapshot
//	GET    /v1/jobs/{id}/result   job outcome; ?wait=1 blocks until terminal
//	GET    /v1/jobs/{id}/progress NDJSON stream of outer-path progress events
//	DELETE /v1/jobs/{id}          cancel a job
//	GET    /healthz               liveness + knowledge-base size
//
// Submit body (defaults in parentheses):
//
//	{
//	  "portfolio":    0,      // archetype 0..2: savings / mixed / annuity
//	  "contracts":    20,     // representative contracts to generate
//	  "fund_assets":  6,      // segregated-fund asset sleeves
//	  "outer":        200,    // n_P real-world scenarios
//	  "inner":        10,     // n_Q risk-neutral scenarios per outer path
//	  "tmax_seconds": 900,    // Solvency II deadline
//	  "max_nodes":    8,      // Algorithm 1 node bound
//	  "epsilon":      0.05,   // exploration probability
//	  "max_workers":  8,      // in-process valuation workers (0 = derive)
//	  "seed":         42      // valuation seed (0 = server-assigned)
//	}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"disarcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "disard:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		seed    = flag.Uint64("seed", 2016, "root seed of the shared deployer")
		workers = flag.Int("workers", 4, "concurrent valuations")
		queue   = flag.Int("queue", 64, "submit queue depth")
		kbPath  = flag.String("kb", "", "knowledge-base JSON to load at boot and save at shutdown")
	)
	flag.Parse()

	opts := []disarcloud.Option{}
	if *kbPath != "" {
		if k, err := disarcloud.LoadKnowledgeBase(*kbPath); err == nil {
			opts = append(opts, disarcloud.WithKnowledgeBase(k))
			log.Printf("loaded knowledge base: %d samples", k.Len())
		} else {
			log.Printf("starting a fresh knowledge base (%v)", err)
		}
	}
	d, err := disarcloud.NewDeployer(*seed, opts...)
	if err != nil {
		return err
	}
	svc, err := disarcloud.NewService(d,
		disarcloud.WithWorkers(*workers), disarcloud.WithQueueDepth(*queue))
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: *addr, Handler: newHandler(svc, d, *seed)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("disard listening on %s (%d workers)", *addr, *workers)

	select {
	case err := <-errCh:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	// Close the service first: it cancels live jobs, so handlers blocked on
	// ?wait=1 results or progress streams return and their connections go
	// idle — otherwise Shutdown would always burn its full deadline.
	svc.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	if *kbPath != "" {
		if err := d.KB().SaveFile(*kbPath); err != nil {
			return err
		}
		log.Printf("knowledge base saved to %s (%d samples)", *kbPath, d.KB().Len())
	}
	return nil
}

// server binds the HTTP surface to one Service.
type server struct {
	svc  *disarcloud.Service
	d    *disarcloud.Deployer
	seed uint64
	// jobSeq derives distinct per-job default seeds; atomic so concurrent
	// submits never share one.
	jobSeq atomic.Uint64
}

func newHandler(svc *disarcloud.Service, d *disarcloud.Deployer, seed uint64) http.Handler {
	s := &server{svc: svc, d: d, seed: seed}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.progress)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /healthz", s.health)
	return mux
}

// jobRequest is the submit body; zero fields take the documented defaults.
type jobRequest struct {
	Portfolio   int     `json:"portfolio"`
	Contracts   int     `json:"contracts"`
	FundAssets  int     `json:"fund_assets"`
	Outer       int     `json:"outer"`
	Inner       int     `json:"inner"`
	TmaxSeconds float64 `json:"tmax_seconds"`
	MaxNodes    int     `json:"max_nodes"`
	// Epsilon is a pointer so an explicit 0 (no exploration) is
	// distinguishable from an omitted field (default 0.05).
	Epsilon    *float64 `json:"epsilon"`
	MaxWorkers int      `json:"max_workers"`
	Seed       uint64   `json:"seed"`
}

// Request ceilings: one HTTP client must not be able to pin a worker slot
// (and the daemon's memory) indefinitely with an arbitrarily large
// valuation. Legitimate bigger jobs belong on a dedicated deployment with
// its own limits.
const (
	maxReqContracts  = 1000
	maxReqFundAssets = 64
	maxReqOuter      = 1_000_000
	maxReqInner      = 10_000
	maxReqNodes      = 64
	maxReqWorkers    = 64
)

func (r *jobRequest) applyDefaults(serverSeed, jobNumber uint64) {
	if r.Contracts <= 0 {
		r.Contracts = 20
	}
	if r.FundAssets <= 0 {
		r.FundAssets = 6
	}
	if r.Outer <= 0 {
		r.Outer = 200
	}
	if r.Inner <= 0 {
		r.Inner = 10
	}
	if r.TmaxSeconds <= 0 {
		r.TmaxSeconds = 900
	}
	if r.MaxNodes <= 0 {
		r.MaxNodes = 8
	}
	if r.Epsilon == nil {
		eps := 0.05
		r.Epsilon = &eps
	}
	if r.Seed == 0 {
		r.Seed = serverSeed + jobNumber*2654435761 + 1
	}
}

func (r *jobRequest) validate() error {
	switch {
	case r.Contracts > maxReqContracts:
		return fmt.Errorf("contracts %d exceeds the limit %d", r.Contracts, maxReqContracts)
	case r.FundAssets > maxReqFundAssets:
		return fmt.Errorf("fund_assets %d exceeds the limit %d", r.FundAssets, maxReqFundAssets)
	case r.Outer > maxReqOuter:
		return fmt.Errorf("outer %d exceeds the limit %d", r.Outer, maxReqOuter)
	case r.Inner > maxReqInner:
		return fmt.Errorf("inner %d exceeds the limit %d", r.Inner, maxReqInner)
	case r.MaxNodes > maxReqNodes:
		return fmt.Errorf("max_nodes %d exceeds the limit %d", r.MaxNodes, maxReqNodes)
	case r.MaxWorkers > maxReqWorkers:
		return fmt.Errorf("max_workers %d exceeds the limit %d", r.MaxWorkers, maxReqWorkers)
	}
	return nil
}

type jobStatusJSON struct {
	ID          string    `json:"id"`
	Status      string    `json:"status"`
	Error       string    `json:"error,omitempty"`
	Done        int       `json:"done"`
	Total       int       `json:"total"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

func snapshotJSON(s disarcloud.JobSnapshot) jobStatusJSON {
	return jobStatusJSON{
		ID: string(s.ID), Status: s.Status.String(), Error: s.Error,
		Done: s.Done, Total: s.Total,
		SubmittedAt: s.SubmittedAt, StartedAt: s.StartedAt, FinishedAt: s.FinishedAt,
	}
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	req.applyDefaults(s.seed, s.jobSeq.Add(1))
	if err := req.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	specs := disarcloud.ItalianCompanySpecs()
	if req.Portfolio < 0 || req.Portfolio >= len(specs) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("portfolio index %d outside 0..%d", req.Portfolio, len(specs)-1))
		return
	}
	gen := specs[req.Portfolio]
	gen.NumContracts = req.Contracts
	p, err := disarcloud.GeneratePortfolio(req.Seed+1, gen)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	market := disarcloud.DefaultMarket(p.MaxTerm())
	// The job must outlive this HTTP request: submit under the server's
	// context, not the request's, so clients can fire and poll.
	id, err := s.svc.Submit(context.Background(), disarcloud.SimulationSpec{
		Portfolio: p,
		Fund:      disarcloud.TypicalItalianFund(req.FundAssets, market),
		Market:    market,
		Outer:     req.Outer,
		Inner:     req.Inner,
		Constraints: disarcloud.Constraints{
			TmaxSeconds: req.TmaxSeconds, MaxNodes: req.MaxNodes, Epsilon: *req.Epsilon,
		},
		MaxWorkers: req.MaxWorkers,
		Seed:       req.Seed,
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, disarcloud.ErrServiceClosed) {
			status = http.StatusServiceUnavailable
		}
		if errors.Is(err, disarcloud.ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": string(id)})
}

func (s *server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := s.svc.Jobs()
	out := make([]jobStatusJSON, len(jobs))
	for i, j := range jobs {
		out[i] = snapshotJSON(j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	snap, err := s.svc.Status(disarcloud.JobID(r.PathValue("id")))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotJSON(snap))
}

type blockResultJSON struct {
	BEL    float64 `json:"bel"`
	SCR    float64 `json:"scr"`
	StdErr float64 `json:"stderr"`
}

type resultJSON struct {
	Status string                     `json:"status"`
	BEL    float64                    `json:"bel"`
	SCR    float64                    `json:"scr"`
	Blocks map[string]blockResultJSON `json:"blocks"`
	Deploy deployJSON                 `json:"deploy"`
}

type deployJSON struct {
	Choice           string  `json:"choice"`
	PredictedSeconds float64 `json:"predicted_seconds"`
	ActualSeconds    float64 `json:"actual_seconds"`
	ProRataUSD       float64 `json:"prorata_usd"`
	BilledUSD        float64 `json:"billed_usd"`
	Bootstrap        bool    `json:"bootstrap"`
	Fallback         bool    `json:"fallback"`
	KBSize           int     `json:"kb_size"`
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	id := disarcloud.JobID(r.PathValue("id"))
	snap, err := s.svc.Status(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	if !snap.Status.Terminal() && !wait {
		writeJSON(w, http.StatusAccepted, snapshotJSON(snap))
		return
	}
	rep, err := s.svc.Result(r.Context(), id)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Either the client went away mid-wait or the job was cancelled;
			// disambiguate via the job's own state.
			snap, serr := s.svc.Status(id)
			if serr == nil && snap.Status.Terminal() {
				writeJSON(w, http.StatusOK, snapshotJSON(snap))
				return
			}
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := resultJSON{
		Status: disarcloud.JobDone.String(),
		BEL:    rep.BEL,
		SCR:    rep.SCR,
		Blocks: make(map[string]blockResultJSON, len(rep.Results)),
		Deploy: deployJSON{
			Choice:           rep.Deploy.Choice.String(),
			PredictedSeconds: rep.Deploy.PredictedSeconds,
			ActualSeconds:    rep.Deploy.ActualSeconds,
			ProRataUSD:       rep.Deploy.ProRataUSD,
			BilledUSD:        rep.Deploy.BilledUSD,
			Bootstrap:        rep.Deploy.Bootstrap,
			Fallback:         rep.Deploy.Fallback,
			KBSize:           rep.Deploy.KBSize,
		},
	}
	for bid, res := range rep.Results {
		out.Blocks[bid] = blockResultJSON{BEL: res.BEL, SCR: res.SCR, StdErr: res.StdErr}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) progress(w http.ResponseWriter, r *http.Request) {
	id := disarcloud.JobID(r.PathValue("id"))
	events, unsub, err := s.svc.Progress(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	defer unsub()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				// Job terminal: emit the final snapshot as the last line.
				if snap, err := s.svc.Status(id); err == nil {
					_ = enc.Encode(snapshotJSON(snap))
				}
				return
			}
			_ = enc.Encode(map[string]any{
				"block": ev.BlockID, "done": ev.Done, "total": ev.Total,
			})
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	id := disarcloud.JobID(r.PathValue("id"))
	if err := s.svc.Cancel(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	snap, _ := s.svc.Status(id)
	writeJSON(w, http.StatusOK, snapshotJSON(snap))
}

func (s *server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"kb_samples": s.d.KB().Len(),
		"jobs":       len(s.svc.Jobs()),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
