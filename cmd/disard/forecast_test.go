package main

import (
	"net/http"
	"testing"
	"time"

	"disarcloud"
)

// TestForecastEndpointDisabled: without WithForecast the endpoint reports
// an inert subsystem rather than 404ing — clients can probe capability.
func TestForecastEndpointDisabled(t *testing.T) {
	srv, _ := newTestServer(t, disarcloud.WithWorkers(1))
	resp, err := http.Get(srv.URL + "/v1/forecast")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	out := decodeJSON[forecastJSON](t, resp)
	if out.Enabled {
		t.Fatal("forecast enabled on a service without WithForecast")
	}
}

// TestForecastEndpointEnabled: with the subsystem on, the endpoint mirrors
// the configuration and fills as the control loop samples.
func TestForecastEndpointEnabled(t *testing.T) {
	srv, _ := newTestServer(t,
		disarcloud.WithWorkers(1),
		disarcloud.WithElastic(disarcloud.ElasticConfig{MaxWorkers: 4}),
		disarcloud.WithForecast(disarcloud.ForecastConfig{Window: 64, Headroom: 1.5}),
	)
	resp, err := http.Get(srv.URL + "/v1/forecast")
	if err != nil {
		t.Fatal(err)
	}
	out := decodeJSON[forecastJSON](t, resp)
	if !out.Enabled {
		t.Fatal("forecast not enabled")
	}
	if out.Window != 64 || out.Headroom != 1.5 {
		t.Fatalf("config echo window=%d headroom=%g, want 64 / 1.5", out.Window, out.Headroom)
	}
}

// TestForecastEndpointWithSkippedCandidate: a candidate skipped by the
// backtest carries sMAPE = +Inf internally, which encoding/json rejects —
// the endpoint must omit the field, not 200 an empty body (regression).
func TestForecastEndpointWithSkippedCandidate(t *testing.T) {
	srv, _ := newTestServer(t,
		disarcloud.WithWorkers(1),
		disarcloud.WithElastic(disarcloud.ElasticConfig{MaxWorkers: 4}),
		disarcloud.WithElasticTick(2*time.Millisecond),
		// A season period of 8 on a 24-sample window: Holt-Winters can never
		// fit at every backtest origin, so its score stays skipped.
		disarcloud.WithForecast(disarcloud.ForecastConfig{
			Window: 24, MinSamples: 4, SeasonPeriod: 8,
		}),
	)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/forecast")
		if err != nil {
			t.Fatal(err)
		}
		out := decodeJSON[forecastJSON](t, resp) // fails on an empty body
		if out.Model != "" {
			skipped := false
			for _, sc := range out.Scores {
				if sc.Skipped != "" {
					if sc.SMAPE != nil {
						t.Fatalf("skipped candidate %s serialised sMAPE %v", sc.Model, *sc.SMAPE)
					}
					skipped = true
				} else if sc.SMAPE == nil {
					t.Fatalf("evaluated candidate %s carries no sMAPE", sc.Model)
				}
			}
			if !skipped {
				t.Fatalf("no skipped candidate in scoreboard %+v; test setup no longer exercises the regression", out.Scores)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no model selected before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLoadgenTraceEndpoint: a trace request returns a deterministic trace
// of the requested shape, with the rate profile on demand.
func TestLoadgenTraceEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, disarcloud.WithWorkers(1))

	body := map[string]any{
		"kind": "diurnal", "intervals": 48, "seed": 7,
		"base_rate": 2.0, "peak_rate": 8.0, "period": 12, "rates": true,
	}
	resp := postJSON(t, srv.URL+"/v1/loadgen/trace", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	out := decodeJSON[traceJSON](t, resp)
	if out.Kind != "diurnal" || out.Intervals != 48 || out.Seed != 7 {
		t.Fatalf("echo %+v", out)
	}
	if len(out.Counts) != 48 || len(out.Rates) != 48 {
		t.Fatalf("counts %d rates %d, want 48/48", len(out.Counts), len(out.Rates))
	}
	sum := 0
	for _, c := range out.Counts {
		if c < 0 {
			t.Fatal("negative arrival count")
		}
		sum += c
	}
	if sum != out.Total || sum == 0 {
		t.Fatalf("total %d vs summed %d", out.Total, sum)
	}

	// Same seed, same trace — the determinism contract over HTTP.
	again := decodeJSON[traceJSON](t, postJSON(t, srv.URL+"/v1/loadgen/trace", body))
	for i := range out.Counts {
		if out.Counts[i] != again.Counts[i] {
			t.Fatalf("counts differ at %d between identical requests", i)
		}
	}
}

// TestLoadgenTraceValidation: malformed specs are clean 400s.
func TestLoadgenTraceValidation(t *testing.T) {
	srv, _ := newTestServer(t, disarcloud.WithWorkers(1))
	bad := []map[string]any{
		{"kind": "weird"},
		{"kind": "diurnal", "intervals": 1},
		{"kind": "diurnal", "intervals": maxReqTraceIntervals + 1},
		{"kind": "diurnal", "base_rate": -2},
		{"kind": "flash", "flash_at": 1.5},
		{"kind": "bursty", "burst_prob": 7},
	}
	for i, body := range bad {
		resp := postJSON(t, srv.URL+"/v1/loadgen/trace", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad trace %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}
