package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"testing"
	"time"

	"disarcloud"
)

// TestMain doubles as the worker-process entry point for the multi-process
// smoke test: re-executed with DISARD_HELPER=worker, the test binary runs a
// real cluster worker instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("DISARD_HELPER") == "worker" {
		if err := runWorker("127.0.0.1:0", os.Getenv("DISARD_COORD"), "", 2); err != nil {
			fmt.Fprintln(os.Stderr, "worker helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// helperLauncher spawns cluster workers by re-executing the test binary —
// the test-suite stand-in for execLauncher (whose -join flags the test
// framework's flag set would reject).
type helperLauncher struct{ coordURL string }

func (l *helperLauncher) StartWorker() (func(), error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "DISARD_HELPER=worker", "DISARD_COORD="+l.coordURL)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() { _ = cmd.Wait(); close(done) }()
	return func() {
		_ = cmd.Process.Signal(os.Interrupt)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}, nil
}

// newClusterServer wires a coordinator-mode daemon exactly as run() does
// with -cluster: the coordinator is the deployer's block runner and its
// cluster API is mounted on the same handler.
func newClusterServer(t *testing.T, self string, peers []string) (*httptest.Server, *disarcloud.ClusterCoordinator) {
	t.Helper()
	knowledge := disarcloud.NewKnowledgeBase()
	coord := disarcloud.NewClusterCoordinator(disarcloud.ClusterConfig{
		HeartbeatEvery: 100 * time.Millisecond,
		KB:             knowledge,
		LocalWorkers:   2,
	})
	d, err := disarcloud.NewDeployer(2016,
		disarcloud.WithKnowledgeBase(knowledge), disarcloud.WithBlockRunner(coord))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(svc, d, 2016, nil, newClusterState(coord, self, peers), nil, 0))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
		coord.StopWorkers()
	})
	return srv, coord
}

// TestClusterSmoke is the multi-process smoke: a coordinator plus two real
// worker processes (re-execs of this binary), a campaign submitted over
// HTTP, completion asserted, workers torn down.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	srv, coord := newClusterServer(t, "", nil)

	l := &helperLauncher{coordURL: srv.URL}
	var stops []func()
	for i := 0; i < 2; i++ {
		stop, err := l.StartWorker()
		if err != nil {
			t.Fatal(err)
		}
		stops = append(stops, stop)
	}
	t.Cleanup(func() {
		for _, stop := range stops {
			stop()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for coord.Status().LiveWorkers < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers joined", coord.Status().LiveWorkers)
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp := postJSON(t, srv.URL+"/v1/campaigns", map[string]any{
		"contracts": 4, "fund_assets": 3, "outer": 24, "inner": 4, "seed": 42,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]

	res, err := http.Get(srv.URL + "/v1/campaigns/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	out := decodeJSON[map[string]any](t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %v", res.StatusCode, out)
	}
	if out["status"] != "done" {
		t.Fatalf("campaign status %v, want done", out["status"])
	}
	st := coord.Status()
	if st.SlicesDispatched == 0 {
		t.Fatal("campaign completed without dispatching any slice to the workers")
	}

	// The status endpoint reflects the same run.
	cs, err := http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	stJSON := decodeJSON[clusterStatusJSON](t, cs)
	if cs.StatusCode != http.StatusOK || stJSON.LiveWorkers != 2 {
		t.Fatalf("cluster status %d, live=%d", cs.StatusCode, stJSON.LiveWorkers)
	}
}

func TestClusterStatusRequiresClusterMode(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d without -cluster, want 404", resp.StatusCode)
	}
}

// peeredClusterServer builds a coordinator-mode server whose listener is
// bound (so its URL is known) but whose ring is wired later, once the peer's
// URL exists too.
func peeredClusterServer(t *testing.T) (srv *httptest.Server, url string, wire func(self string, peers []string)) {
	t.Helper()
	knowledge := disarcloud.NewKnowledgeBase()
	coord := disarcloud.NewClusterCoordinator(disarcloud.ClusterConfig{KB: knowledge, LocalWorkers: 1})
	d, err := disarcloud.NewDeployer(2016,
		disarcloud.WithKnowledgeBase(knowledge), disarcloud.WithBlockRunner(coord))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, disarcloud.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	srv = httptest.NewUnstartedServer(nil)
	url = "http://" + srv.Listener.Addr().String()
	wire = func(self string, peers []string) {
		srv.Config.Handler = newHandler(svc, d, 2016, nil, newClusterState(coord, self, peers), nil, 0)
		srv.Start()
	}
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, url, wire
}

// TestSubmitRoutedToRingOwner spins up two peered coordinators and checks a
// submission lands on its consistent-hash owner no matter which peer
// received it, with the forwarding recorded in the response header.
func TestSubmitRoutedToRingOwner(t *testing.T) {
	srvA, urlA, wireA := peeredClusterServer(t)
	srvB, urlB, wireB := peeredClusterServer(t)
	wireA(urlA, []string{urlB})
	wireB(urlB, []string{urlA})

	body := map[string]any{"contracts": 3, "fund_assets": 3, "outer": 6, "inner": 2, "seed": 7}
	raw, _ := json.Marshal(body)
	cs := newClusterState(nil, urlA, []string{urlB})
	owner := cs.owner(raw)
	nonOwner := srvA
	if owner == urlA {
		nonOwner = srvB
	}

	resp := postJSON(t, nonOwner.URL+"/v1/jobs", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("routed submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(routedHeader + "-To"); got != owner+"/v1/jobs" {
		t.Fatalf("routed-to header %q, want %q", got, owner+"/v1/jobs")
	}
	id := decodeJSON[map[string]string](t, resp)["id"]

	// The job must live on the owner, not on the receiver.
	ownerResp, err := http.Get(owner + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	ownerResp.Body.Close()
	if ownerResp.StatusCode != http.StatusOK {
		t.Fatalf("job missing on ring owner: status %d", ownerResp.StatusCode)
	}
	otherURL := urlA
	if owner == urlA {
		otherURL = urlB
	}
	otherResp, err := http.Get(otherURL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	otherResp.Body.Close()
	if otherResp.StatusCode != http.StatusNotFound {
		t.Fatalf("job present on non-owner: status %d", otherResp.StatusCode)
	}
}
