package main

// Fuzz targets for the daemon's JSON request decoding — the other place
// malformed input reaches deepest: a request that survives decode +
// defaults + validation flows into portfolio generation and spec
// construction, so the invariant under fuzz is "either a clean error, or a
// spec that Validate accepts".

import (
	"encoding/json"
	"testing"

	"disarcloud"
)

// fuzzServer is a handler-less server shell: buildSpec needs only the seed
// and the job counter.
func fuzzServer() *server { return &server{seed: 2016} }

func jobSeeds(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"portfolio":1,"contracts":20,"outer":200,"inner":10,"seed":42}`))
	f.Add([]byte(`{"portfolio":-1}`))
	f.Add([]byte(`{"portfolio":99999}`))
	f.Add([]byte(`{"contracts":1000000,"fund_assets":-3}`))
	f.Add([]byte(`{"outer":0,"inner":-5,"tmax_seconds":-1}`))
	f.Add([]byte(`{"tmax_seconds":1e308,"max_nodes":9999,"epsilon":2}`))
	f.Add([]byte(`{"epsilon":null,"seed":18446744073709551615}`))
	f.Add([]byte(`{"max_workers":65,"max_nodes":-1}`))
	f.Add([]byte(`{"contracts":3.7}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"portfolio":`))
	f.Add([]byte("\x00\xff garbage"))
}

// FuzzJobRequestDecode drives arbitrary bodies through the single-job
// submit decode path.
func FuzzJobRequestDecode(f *testing.F) {
	jobSeeds(f)
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		var req jobRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return // malformed JSON is rejected before it reaches buildSpec
		}
		spec, err := s.buildSpec(&req)
		if err != nil {
			return // clean rejection
		}
		// An accepted request must have produced a submittable spec: this is
		// exactly what Service.Submit would check next.
		if err := spec.Validate(); err != nil {
			t.Fatalf("buildSpec accepted %q but the spec does not validate: %v", body, err)
		}
		if spec.Constraints.Epsilon < 0 || spec.Constraints.Epsilon > 1 {
			t.Fatalf("buildSpec accepted epsilon %v outside [0,1]", spec.Constraints.Epsilon)
		}
	})
}

// FuzzCampaignRequestDecode drives arbitrary bodies through the campaign
// submit decode path, including the campaign-only switches and the shock
// list construction.
func FuzzCampaignRequestDecode(f *testing.F) {
	jobSeeds(f)
	f.Add([]byte(`{"no_reuse":true,"longevity":true}`))
	f.Add([]byte(`{"longevity":1}`))
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		var req campaignRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return
		}
		spec, err := s.buildSpec(&req.jobRequest)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("campaign buildSpec accepted %q but the spec does not validate: %v", body, err)
		}
		shocks := disarcloud.StandardFormulaShocks()
		if req.Longevity {
			shocks = append(shocks, disarcloud.LongevityShock())
		}
		if len(shocks) == 0 {
			t.Fatal("campaign request produced an empty shock battery")
		}
	})
}
