package main

// Fuzz targets for the daemon's JSON request decoding — the other place
// malformed input reaches deepest: a request that survives decode +
// defaults + validation flows into portfolio generation and spec
// construction, so the invariant under fuzz is "either a clean error, or a
// spec that Validate accepts".

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"disarcloud"
)

// fuzzServer is a handler-less server shell: buildSpec needs only the seed
// and the job counter.
func fuzzServer() *server { return &server{seed: 2016} }

func jobSeeds(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"portfolio":1,"contracts":20,"outer":200,"inner":10,"seed":42}`))
	f.Add([]byte(`{"portfolio":-1}`))
	f.Add([]byte(`{"portfolio":99999}`))
	f.Add([]byte(`{"contracts":1000000,"fund_assets":-3}`))
	f.Add([]byte(`{"outer":0,"inner":-5,"tmax_seconds":-1}`))
	f.Add([]byte(`{"tmax_seconds":1e308,"max_nodes":9999,"epsilon":2}`))
	f.Add([]byte(`{"epsilon":null,"seed":18446744073709551615}`))
	f.Add([]byte(`{"max_workers":65,"max_nodes":-1}`))
	f.Add([]byte(`{"contracts":3.7}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"portfolio":`))
	f.Add([]byte("\x00\xff garbage"))
}

// FuzzJobRequestDecode drives arbitrary bodies through the single-job
// submit decode path.
func FuzzJobRequestDecode(f *testing.F) {
	jobSeeds(f)
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		var req jobRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return // malformed JSON is rejected before it reaches buildSpec
		}
		spec, err := s.buildSpec(&req)
		if err != nil {
			return // clean rejection
		}
		// An accepted request must have produced a submittable spec: this is
		// exactly what Service.Submit would check next.
		if err := spec.Validate(); err != nil {
			t.Fatalf("buildSpec accepted %q but the spec does not validate: %v", body, err)
		}
		if spec.Constraints.Epsilon < 0 || spec.Constraints.Epsilon > 1 {
			t.Fatalf("buildSpec accepted epsilon %v outside [0,1]", spec.Constraints.Epsilon)
		}
	})
}

// FuzzTraceRequestDecode drives arbitrary bodies through the loadgen
// trace-spec decode path. The invariant: either a clean rejection, or a
// spec that both validates and actually generates — a generated trace must
// have exactly the requested length and no negative counts, and the
// server-side interval cap must hold.
func FuzzTraceRequestDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"diurnal","intervals":48,"seed":7,"base_rate":2,"peak_rate":8,"period":12}`))
	f.Add([]byte(`{"kind":"bursty","burst_prob":0.1,"calm_prob":0.4}`))
	f.Add([]byte(`{"kind":"flash","flash_at":0.9,"flash_width":3,"rates":true}`))
	f.Add([]byte(`{"kind":"mixed","intervals":100000}`))
	f.Add([]byte(`{"kind":"weird"}`))
	f.Add([]byte(`{"intervals":-5,"base_rate":-1}`))
	f.Add([]byte(`{"intervals":100001}`))
	f.Add([]byte(`{"base_rate":1e308,"peak_rate":1e-308}`))
	f.Add([]byte(`{"period":1,"flash_width":-2}`))
	f.Add([]byte(`{"burst_prob":2,"calm_prob":-1,"flash_at":1.0000001}`))
	f.Add([]byte(`{"seed":18446744073709551615,"rates":1}`))
	f.Add([]byte(`{"kind":`))
	f.Add([]byte("\x00\xff garbage"))
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		var req traceRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return // malformed JSON is rejected before it reaches buildTraceSpec
		}
		spec, err := s.buildTraceSpec(&req)
		if err != nil {
			return // clean rejection
		}
		if spec.Intervals > maxReqTraceIntervals {
			t.Fatalf("buildTraceSpec accepted %d intervals past the request cap", spec.Intervals)
		}
		counts, err := disarcloud.GenerateTrace(spec)
		if err != nil {
			t.Fatalf("buildTraceSpec accepted %q but generation failed: %v", body, err)
		}
		if len(counts) != spec.Intervals {
			t.Fatalf("trace length %d, spec wants %d", len(counts), spec.Intervals)
		}
		for i, c := range counts {
			if c < 0 {
				t.Fatalf("negative arrival count %d at interval %d", c, i)
			}
		}
	})
}

// FuzzProxyRequestDecode drives arbitrary bodies carrying a proxy section
// through the submit decode path. The invariant sharpens the job one: an
// accepted body with a proxy section must produce a spec whose Proxy both
// validates and respects the request ceilings (training sample bounded, the
// too-small clamp never under-shoots the usable minimum).
func FuzzProxyRequestDecode(f *testing.F) {
	f.Add([]byte(`{"proxy":{}}`))
	f.Add([]byte(`{"outer":50,"proxy":{"train_outer":32,"error_budget":0.05,"model":"forest"}}`))
	f.Add([]byte(`{"proxy":{"model":"poly","degree":3,"train_inner":5}}`))
	f.Add([]byte(`{"proxy":{"train_outer":5}}`))
	f.Add([]byte(`{"proxy":{"train_outer":-1}}`))
	f.Add([]byte(`{"proxy":{"train_outer":5001}}`))
	f.Add([]byte(`{"proxy":{"error_budget":2}}`))
	f.Add([]byte(`{"proxy":{"error_budget":-0.5,"escalation_cap":1.5}}`))
	f.Add([]byte(`{"proxy":{"model":"nope"}}`))
	f.Add([]byte(`{"proxy":{"degree":9}}`))
	f.Add([]byte(`{"proxy":{"train_inner":100000}}`))
	f.Add([]byte(`{"proxy":null}`))
	f.Add([]byte(`{"proxy":[]}`))
	f.Add([]byte(`{"proxy":{"error_budget":1e-308,"escalation_cap":1}}`))
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		var req jobRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return
		}
		spec, err := s.buildSpec(&req)
		if err != nil {
			return // clean rejection
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("buildSpec accepted %q but the spec does not validate: %v", body, err)
		}
		if req.Proxy == nil {
			if spec.Proxy != nil {
				t.Fatalf("no proxy section, no server default, but spec carries %+v", spec.Proxy)
			}
			return
		}
		if spec.Proxy == nil {
			t.Fatalf("accepted proxy section %q lost on the way to the spec", body)
		}
		if spec.Proxy.TrainOuter > maxReqProxyTrain {
			t.Fatalf("proxy training sample %d past the request cap", spec.Proxy.TrainOuter)
		}
		if spec.Proxy.TrainOuter != 0 && spec.Proxy.TrainOuter < disarcloud.MinProxyTrainOuter {
			t.Fatalf("proxy training sample %d below the usable minimum", spec.Proxy.TrainOuter)
		}
	})
}

// FuzzCostRequestDecode drives arbitrary bodies carrying the cost-plane
// fields (budget, tier) through the submit decode path. The invariant: an
// accepted body must resolve to a non-negative, ceiling-clamped MaxCost and
// a tier list the selector recognises — and an unknown tier name or a
// negative/NaN budget must be a clean rejection, never a spec.
func FuzzCostRequestDecode(f *testing.F) {
	f.Add([]byte(`{"budget":10,"tier":"spot"}`))
	f.Add([]byte(`{"budget":0}`))
	f.Add([]byte(`{"budget":0.0001,"tier":"on-demand"}`))
	f.Add([]byte(`{"tier":"reserved"}`))
	f.Add([]byte(`{"tier":"any"}`))
	f.Add([]byte(`{"tier":"ANY"}`))
	f.Add([]byte(`{"tier":"preemptible"}`))
	f.Add([]byte(`{"budget":-1}`))
	f.Add([]byte(`{"budget":1e308,"tier":"spot"}`))
	f.Add([]byte(`{"budget":1e-308}`))
	f.Add([]byte(`{"budget":null,"tier":null}`))
	f.Add([]byte(`{"budget":"12"}`))
	f.Add([]byte(`{"tier":3}`))
	f.Add([]byte(`{"budget":`))
	f.Add([]byte("\x00\xff garbage"))
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		var req jobRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return
		}
		spec, err := s.buildSpec(&req)
		if err != nil {
			return // clean rejection
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("buildSpec accepted %q but the spec does not validate: %v", body, err)
		}
		mc := spec.Constraints.MaxCost
		if mc < 0 || mc != mc || mc > maxReqBudget {
			t.Fatalf("buildSpec accepted %q with max cost %v outside [0,%v]", body, mc, maxReqBudget)
		}
		for _, tier := range spec.Constraints.Tiers {
			if _, err := disarcloud.ParseTier(tier.String()); err != nil {
				t.Fatalf("buildSpec accepted %q with unknown tier %v", body, tier)
			}
		}
		if req.Tier != "" && len(spec.Constraints.Tiers) == 0 {
			t.Fatalf("accepted tier %q lost on the way to the spec", req.Tier)
		}
	})
}

// FuzzCampaignRequestDecode drives arbitrary bodies through the campaign
// submit decode path, including the campaign-only switches and the shock
// list construction.
func FuzzCampaignRequestDecode(f *testing.F) {
	jobSeeds(f)
	f.Add([]byte(`{"no_reuse":true,"longevity":true}`))
	f.Add([]byte(`{"longevity":1}`))
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		var req campaignRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return
		}
		spec, err := s.buildSpec(&req.jobRequest)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("campaign buildSpec accepted %q but the spec does not validate: %v", body, err)
		}
		shocks := disarcloud.StandardFormulaShocks()
		if req.Longevity {
			shocks = append(shocks, disarcloud.LongevityShock())
		}
		if len(shocks) == 0 {
			t.Fatal("campaign request produced an empty shock battery")
		}
	})
}

// FuzzVerifyRequestDecode drives arbitrary bodies through the `-check`
// decode path. The decoder is strict (unknown fields and trailing data are
// rejected), so the invariant is: either a clean decode error, a clean
// validation error, or a request whose SLA is coherent and whose trace spec
// actually generates — the same contract runCheck relies on before it
// spends seconds building the product chain.
func FuzzVerifyRequestDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"policy":"reactive","min_workers":4,"max_workers":16,"tick_ms":100,"mean_runtime_ms":250,"phase_levels":4,"max_queue":64,"trace":{"Kind":"diurnal","Intervals":256,"Seed":1,"BaseRate":1,"PeakRate":5,"Period":64},"sla":{"queue_bound":32,"horizon_ticks":60,"max_probability":0.05}}`))
	f.Add([]byte(`{"policy":"hybrid","min_workers":2,"max_workers":8,"tick_ms":100,"mean_runtime_ms":200,"headroom":1.3,"trace":{"Kind":"bursty","Intervals":64,"Seed":1,"BaseRate":1.5,"PeakRate":7},"sla":{"queue_bound":16,"horizon_ticks":30,"max_probability":0.5}}`))
	f.Add([]byte(`{"policy":"psychic"}`))
	f.Add([]byte(`{"policy":"reactive","min_workers":-1,"max_workers":0}`))
	f.Add([]byte(`{"policy":"reactive","min_workers":8,"max_workers":4}`))
	f.Add([]byte(`{"tick_ms":0,"mean_runtime_ms":-5}`))
	f.Add([]byte(`{"tick_ms":9999999,"max_queue":-1,"phase_levels":1000}`))
	f.Add([]byte(`{"sla":{"queue_bound":0,"horizon_ticks":-1,"max_probability":2}}`))
	f.Add([]byte(`{"sla":{"max_probability":1e-308},"headroom":1e308}`))
	f.Add([]byte(`{"trace":{"Kind":"weird","Intervals":-3}}`))
	f.Add([]byte(`{"trace":{"Kind":"bursty","BurstProb":2,"CalmProb":-1}}`))
	f.Add([]byte(`{"initial_workers":99999,"max_step":-2}`))
	f.Add([]byte(`{"scale_up_pressure":0.1,"scale_down_pressure":0.9}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"policy":"reactive"} trailing`))
	f.Add([]byte(`{"policy":`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff garbage"))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeVerifyRequest(bytes.NewReader(body))
		if err != nil {
			return // clean decode rejection
		}
		if err := req.Validate(); err != nil {
			return // clean validation rejection
		}
		sla := req.SLA
		if sla.QueueBound < 1 || sla.HorizonTicks < 1 ||
			sla.MaxProbability <= 0 || sla.MaxProbability > 1 {
			t.Fatalf("Validate accepted %q with incoherent SLA %+v", body, sla)
		}
		// A validated request's trace spec is what the chain builder and the
		// replay cross-validator both consume — it must generate.
		if _, err := disarcloud.GenerateTrace(req.Trace); err != nil {
			t.Fatalf("Validate accepted %q but its trace does not generate: %v", body, err)
		}
	})
}

// FuzzPolicyRequestDecode drives arbitrary bodies through the daemon's
// "policy" config section decode path. The decoder is strict, so the
// invariant is: either a clean rejection, or a request whose fields are
// mutually consistent — a recognized policy name, a qtable if and only if
// the policy is learned, and a headroom only on hybrid and never negative.
func FuzzPolicyRequestDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"policy":"reactive"}`))
	f.Add([]byte(`{"policy":"hybrid"}`))
	f.Add([]byte(`{"policy":"hybrid","headroom":1.4}`))
	f.Add([]byte(`{"policy":"learned","qtable":"testdata/qtable_v1.json"}`))
	f.Add([]byte(`{"policy":"learned"}`))
	f.Add([]byte(`{"policy":"psychic"}`))
	f.Add([]byte(`{"policy":"reactive","qtable":"q.json"}`))
	f.Add([]byte(`{"qtable":"q.json"}`))
	f.Add([]byte(`{"policy":"learned","qtable":"q.json","headroom":1.2}`))
	f.Add([]byte(`{"policy":"hybrid","headroom":-1}`))
	f.Add([]byte(`{"policy":"hybrid","headroom":1e308}`))
	f.Add([]byte(`{"policy":"hybrid","headroom":null}`))
	f.Add([]byte(`{"policy":null,"qtable":null}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"policy":"reactive"} trailing`))
	f.Add([]byte(`{"policy":`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff garbage"))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodePolicyRequest(body)
		if err != nil {
			return // clean rejection
		}
		switch req.Policy {
		case "", "reactive", "hybrid", "learned":
		default:
			t.Fatalf("decodePolicyRequest accepted unknown policy %q from %q", req.Policy, body)
		}
		if (req.QTable != "") != (req.Policy == "learned") {
			t.Fatalf("decodePolicyRequest accepted inconsistent qtable wiring: %+v from %q", req, body)
		}
		if req.Headroom != 0 && req.Policy != "hybrid" {
			t.Fatalf("decodePolicyRequest accepted headroom on %q: %q", req.Policy, body)
		}
		if req.Headroom < 0 {
			t.Fatalf("decodePolicyRequest accepted negative headroom: %q", body)
		}
	})
}

// FuzzJoinRequestDecode drives arbitrary bodies through the cluster join
// endpoint — worker registration is the one place untrusted input reaches
// the coordinator's membership state. The invariant: never a panic, never a
// 5xx, and a 200 must carry a usable registration (non-empty worker id and
// a positive heartbeat cadence).
func FuzzJoinRequestDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"w0","addr":"127.0.0.1:9000","slots":2}`))
	f.Add([]byte(`{"name":"","addr":"127.0.0.1:9000","slots":2}`))
	f.Add([]byte(`{"name":"w0","addr":"","slots":2}`))
	f.Add([]byte(`{"name":"w0","addr":"127.0.0.1:9000","slots":0}`))
	f.Add([]byte(`{"name":"w0","addr":"127.0.0.1:9000","slots":-3}`))
	f.Add([]byte(`{"name":"w0","addr":"127.0.0.1:9000","slots":1025}`))
	f.Add([]byte(`{"name":"w0","addr":"127.0.0.1:9000","slots":3.7}`))
	f.Add([]byte(`{"slots":18446744073709551615}`))
	f.Add([]byte(`{"name":null,"addr":null,"slots":null}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"name":`))
	f.Add([]byte("\x00\xff garbage"))
	mux := http.NewServeMux()
	disarcloud.NewClusterCoordinator(disarcloud.ClusterConfig{}).Routes(mux)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/join", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("join body %q produced server error %d: %s", body, rec.Code, rec.Body.String())
		}
		if rec.Code != http.StatusOK {
			return // clean rejection
		}
		var resp struct {
			ID               string  `json:"id"`
			HeartbeatSeconds float64 `json:"heartbeatSeconds"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("accepted join %q returned unparseable response: %v", body, err)
		}
		if resp.ID == "" || resp.HeartbeatSeconds <= 0 {
			t.Fatalf("accepted join %q returned unusable registration %+v", body, resp)
		}
	})
}
