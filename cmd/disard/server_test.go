package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"disarcloud"
)

// newTestServer wires a real service + deployer behind the HTTP handler,
// exactly as run() does, and tears everything down with the test.
func newTestServer(t *testing.T, opts ...disarcloud.ServiceOption) (*httptest.Server, *disarcloud.Service) {
	t.Helper()
	d, err := disarcloud.NewDeployer(2016)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := disarcloud.NewService(d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(svc, d, 2016, nil, nil, nil, 0))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// smallJob is a fast valuation request for happy-path tests.
func smallJob() map[string]any {
	return map[string]any{
		"contracts": 4, "outer": 20, "inner": 3, "seed": 42, "max_workers": 2,
	}
}

// hugeJob is a request big enough to still be running while the test pokes
// at it.
func hugeJob(seed int) map[string]any {
	return map[string]any{
		"contracts": 40, "outer": 500000, "inner": 50, "seed": seed, "max_workers": 1,
	}
}

func TestSubmitStatusResultLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, disarcloud.WithWorkers(2))

	resp := postJSON(t, srv.URL+"/v1/jobs", smallJob())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	sub := decodeJSON[map[string]string](t, resp)
	id := sub["id"]
	if id == "" {
		t.Fatal("submit returned no job id")
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status status %d, want 200", resp.StatusCode)
	}
	snap := decodeJSON[map[string]any](t, resp)
	if snap["id"] != id {
		t.Fatalf("status id %v, want %s", snap["id"], id)
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d, want 200", resp.StatusCode)
	}
	res := decodeJSON[map[string]any](t, resp)
	if res["status"] != "done" {
		t.Fatalf("result status field %v, want done", res["status"])
	}
	if bel, _ := res["bel"].(float64); bel <= 0 {
		t.Fatalf("result BEL %v not positive", res["bel"])
	}
	if _, ok := res["deploy"].(map[string]any); !ok {
		t.Fatal("result missing deploy record")
	}

	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeJSON[[]map[string]any](t, resp)
	if len(list) != 1 {
		t.Fatalf("job list has %d entries, want 1", len(list))
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decodeJSON[map[string]any](t, resp)
	if health["status"] != "ok" {
		t.Fatalf("healthz %v", health)
	}
	if kb, _ := health["kb_samples"].(float64); kb != 1 {
		t.Fatalf("healthz kb_samples %v, want 1", health["kb_samples"])
	}
}

func TestCancelJob(t *testing.T) {
	srv, _ := newTestServer(t, disarcloud.WithWorkers(1))

	resp := postJSON(t, srv.URL+"/v1/jobs", hugeJob(7))
	sub := decodeJSON[map[string]string](t, resp)
	id := sub["id"]

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// The job must settle cancelled.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		snap := decodeJSON[map[string]any](t, resp)
		if snap["status"] == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %v after cancel", snap["status"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBadRequestValidation(t *testing.T) {
	srv, svc := newTestServer(t, disarcloud.WithWorkers(1))

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"outer": `},
		{"portfolio out of range", `{"portfolio": 9}`},
		{"contracts over limit", `{"contracts": 100000}`},
		{"outer over limit", `{"outer": 2000000}`},
		{"inner over limit", `{"inner": 100000}`},
		{"workers over limit", `{"max_workers": 1000}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			body := decodeJSON[map[string]string](t, resp)
			if body["error"] == "" {
				t.Fatal("400 without error message")
			}
		})
	}
	if got := len(svc.Jobs()); got != 0 {
		t.Fatalf("invalid requests left %d job records", got)
	}

	// Unknown IDs are 404s.
	for _, path := range []string{"/v1/jobs/job-nope", "/v1/jobs/job-nope/result", "/v1/campaigns/camp-nope", "/v1/campaigns/camp-nope/result"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestBackpressure503 fills the one-deep queue behind a busy worker and
// checks the daemon sheds load with 503 + Retry-After instead of blocking.
func TestBackpressure503(t *testing.T) {
	srv, svc := newTestServer(t, disarcloud.WithWorkers(1), disarcloud.WithQueueDepth(1))

	resp := postJSON(t, srv.URL+"/v1/jobs", hugeJob(3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit status %d", resp.StatusCode)
	}
	blocker := decodeJSON[map[string]string](t, resp)["id"]
	// Wait until the worker picked the blocker up, freeing the queue slot.
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, err := svc.Status(disarcloud.JobID(blocker))
		if err != nil {
			t.Fatal(err)
		}
		if snap.Status == disarcloud.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp = postJSON(t, srv.URL+"/v1/jobs", hugeJob(4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-fill submit status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, srv.URL+"/v1/jobs", smallJob())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	body := decodeJSON[map[string]string](t, resp)
	if body["error"] == "" {
		t.Fatal("503 without error message")
	}

	// Campaigns hit the same backpressure (all-or-nothing).
	resp = postJSON(t, srv.URL+"/v1/campaigns", smallJob())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("campaign on full queue status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	if got := len(svc.Campaigns()); got != 0 {
		t.Fatalf("rejected campaign left %d records", got)
	}
}

// TestCampaignEndpoint drives a small stress campaign through the HTTP
// surface: submit, status, blocking result with per-module deltas and the
// aggregated SCR, then cancellation paths on a second campaign.
func TestCampaignEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, disarcloud.WithWorkers(4))

	resp := postJSON(t, srv.URL+"/v1/campaigns", smallJob())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("campaign submit status %d, want 202", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]
	if id == "" {
		t.Fatal("campaign submit returned no id")
	}

	resp, err := http.Get(srv.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign status %d, want 200", resp.StatusCode)
	}
	snap := decodeJSON[map[string]any](t, resp)
	if jobs, _ := snap["jobs"].([]any); len(jobs) != 8 {
		t.Fatalf("campaign tracks %v jobs, want 8", len(snap["jobs"].([]any)))
	}

	resp, err = http.Get(srv.URL + "/v1/campaigns/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign result status %d, want 200", resp.StatusCode)
	}
	res := decodeJSON[map[string]any](t, resp)
	if bel, _ := res["base_bel"].(float64); bel <= 0 {
		t.Fatalf("campaign base BEL %v", res["base_bel"])
	}
	modules, _ := res["modules"].([]any)
	if len(modules) != 7 {
		t.Fatalf("campaign result has %d modules, want 7", len(modules))
	}
	scr, _ := res["scr"].(map[string]any)
	if scr == nil {
		t.Fatal("campaign result missing scr block")
	}
	if bscr, _ := scr["bscr"].(float64); bscr <= 0 {
		t.Fatalf("aggregated BSCR %v not positive", scr["bscr"])
	}

	resp, err = http.Get(srv.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	if list := decodeJSON[[]map[string]any](t, resp); len(list) != 1 {
		t.Fatalf("campaign list has %d entries, want 1", len(list))
	}

	// Cancel a second, long-running campaign.
	resp = postJSON(t, srv.URL+"/v1/campaigns", hugeJob(9))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second campaign submit status %d", resp.StatusCode)
	}
	id2 := decodeJSON[map[string]string](t, resp)["id"]
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns/"+id2, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign cancel status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/campaigns/" + id2)
		if err != nil {
			t.Fatal(err)
		}
		snap := decodeJSON[map[string]any](t, resp)
		if snap["status"] == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %v after cancel", snap["status"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerAssignsDistinctDefaultSeeds checks that omitted seeds derive
// per-job defaults, so two identical bodies do not collapse onto one stream.
func TestServerAssignsDistinctDefaultSeeds(t *testing.T) {
	srv, svc := newTestServer(t, disarcloud.WithWorkers(2))
	body := map[string]any{"contracts": 4, "outer": 10, "inner": 2}
	var ids []string
	for i := 0; i < 2; i++ {
		resp := postJSON(t, srv.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status %d", i, resp.StatusCode)
		}
		ids = append(ids, decodeJSON[map[string]string](t, resp)["id"])
	}
	var bels []float64
	for _, id := range ids {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result?wait=1", srv.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		res := decodeJSON[map[string]any](t, resp)
		bel, _ := res["bel"].(float64)
		bels = append(bels, bel)
	}
	if bels[0] == bels[1] {
		t.Fatalf("default-seeded jobs share a stream: BEL %v == %v", bels[0], bels[1])
	}
	_ = svc
}

// TestRetryAfterClamp pins the Retry-After boundary arithmetic: a zero,
// sub-second, negative or non-finite backlog estimate must never emit
// `Retry-After: 0` (an invitation to hammer the endpoint immediately), and
// whole-second estimates round up, not down.
func TestRetryAfterClamp(t *testing.T) {
	cases := []struct {
		estimate float64
		want     int
	}{
		{0, 1},
		{0.2, 1},
		{0.999, 1},
		{1, 1},
		{1.01, 2},
		{3.2, 4},
		{120, 120},
		{86399, 86399},
		{86400, 86400},
		{1e19, 86400}, // finite overflow: int(1e19) would go negative on amd64
		{-5, 1},
		{math.NaN(), 1},
		{math.Inf(1), 86400},
		{math.Inf(-1), 1},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.estimate); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.estimate, got, tc.want)
		}
	}
}

// TestSubmitStatusAdmissionHeaders checks the full status mapping around
// the clamp: congestion rejections carry 503 plus a >=1 Retry-After, while
// infeasible jobs get 400 with no retry hint (retrying cannot help).
func TestSubmitStatusAdmissionHeaders(t *testing.T) {
	rec := httptest.NewRecorder()
	err := fmt.Errorf("wrapped: %w", &disarcloud.AdmissionError{
		PredictedSeconds: 30, TmaxSeconds: 25, RetryAfterSeconds: 0,
	})
	if status := submitStatus(rec, err); status != http.StatusServiceUnavailable {
		t.Fatalf("congestion rejection mapped to %d, want 503", status)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("zero-estimate rejection got Retry-After %q, want \"1\"", got)
	}

	rec = httptest.NewRecorder()
	err = &disarcloud.AdmissionError{PredictedSeconds: 50, TmaxSeconds: 25, Infeasible: true}
	if status := submitStatus(rec, err); status != http.StatusBadRequest {
		t.Fatalf("infeasible rejection mapped to %d, want 400", status)
	}
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Fatalf("infeasible rejection carries Retry-After %q; retrying is pointless", got)
	}
}
