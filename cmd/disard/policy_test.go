package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"disarcloud"
)

// shippedQTablePath is the committed learned-policy artifact, relative to
// this package.
const shippedQTablePath = "../../testdata/qtable_v1.json"

// TestDecodePolicyRequest: the policy section decodes strictly and enforces
// its internal consistency rules.
func TestDecodePolicyRequest(t *testing.T) {
	good := []string{
		`{}`,
		`{"policy":"reactive"}`,
		`{"policy":"hybrid"}`,
		`{"policy":"hybrid","headroom":1.4}`,
		`{"policy":"learned","qtable":"q.json"}`,
	}
	for _, body := range good {
		if _, err := decodePolicyRequest([]byte(body)); err != nil {
			t.Errorf("%s rejected: %v", body, err)
		}
	}
	bad := []struct {
		name string
		body string
	}{
		{"unknown policy", `{"policy":"psychic"}`},
		{"qtable on reactive", `{"policy":"reactive","qtable":"q.json"}`},
		{"qtable without policy", `{"qtable":"q.json"}`},
		{"learned without qtable", `{"policy":"learned"}`},
		{"headroom on learned", `{"policy":"learned","qtable":"q.json","headroom":1.2}`},
		{"headroom on reactive", `{"policy":"reactive","headroom":1.2}`},
		{"negative headroom", `{"policy":"hybrid","headroom":-1}`},
		{"unknown field", `{"policy":"reactive","qtbale":"q.json"}`},
		{"trailing data", `{"policy":"reactive"}{"policy":"hybrid"}`},
		{"not an object", `[1,2,3]`},
		{"truncated", `{"policy":`},
	}
	for _, tc := range bad {
		if _, err := decodePolicyRequest([]byte(tc.body)); err == nil {
			t.Errorf("%s: decodePolicyRequest accepted %s", tc.name, tc.body)
		}
	}
}

// TestLoadPolicyConfig: a relative qtable path in a config file resolves
// against the file's own directory; an absolute path is untouched.
func TestLoadPolicyConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.json")
	if err := os.WriteFile(path, []byte(`{"policy":"learned","qtable":"tables/q.json"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	req, err := loadPolicyConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "tables", "q.json"); req.QTable != want {
		t.Fatalf("relative qtable resolved to %q, want %q", req.QTable, want)
	}

	abs := filepath.Join(dir, "elsewhere.json")
	body := `{"policy":"learned","qtable":` + string(mustJSON(t, abs)) + `}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if req, err = loadPolicyConfig(path); err != nil {
		t.Fatal(err)
	}
	if req.QTable != abs {
		t.Fatalf("absolute qtable rewritten to %q", req.QTable)
	}

	if _, err := loadPolicyConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loadPolicyConfig accepted a missing file")
	}
	if err := os.WriteFile(path, []byte(`{"policy":"weird"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadPolicyConfig(path); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("invalid config error %v does not name the file", err)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLoadQTableShippedArtifact: the committed artifact loads through the
// daemon's path and carries the version this build reads.
func TestLoadQTableShippedArtifact(t *testing.T) {
	tbl, err := loadQTable(shippedQTablePath)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Version != disarcloud.QTableVersion {
		t.Fatalf("artifact version %d, build reads %d", tbl.Version, disarcloud.QTableVersion)
	}
	if _, err := loadQTable(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loadQTable accepted a missing file")
	}
}

// TestLearnedGateFilesDecode pins the learned CI gate inputs: both committed
// request files decode strictly, their qtable resolves to the shipped
// artifact, they validate with the table attached, and they differ only in
// the queue bound under test (the violation file is the negative control).
func TestLearnedGateFilesDecode(t *testing.T) {
	var reqs [2]disarcloud.VerifyRequest
	for i, name := range []string{"verify_learned.json", "verify_learned_violation.json"} {
		f, err := os.Open(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		req, err := decodeVerifyRequest(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if req.Policy != "learned" || req.QTable == "" {
			t.Fatalf("%s is not a learned request with a qtable: %+v", name, req)
		}
		tbl, err := disarcloud.LoadQTable(filepath.Join("testdata", req.QTable))
		if err != nil {
			t.Fatalf("%s: qtable does not load: %v", name, err)
		}
		req.Table = tbl
		if err := req.Validate(); err != nil {
			t.Fatalf("%s does not validate: %v", name, err)
		}
		reqs[i] = req
	}
	if reqs[0].SLA.QueueBound <= reqs[1].SLA.QueueBound {
		t.Fatalf("violation file must test a tighter queue bound: default %d vs violation %d",
			reqs[0].SLA.QueueBound, reqs[1].SLA.QueueBound)
	}
	reqs[0].Table, reqs[1].Table = nil, nil
	reqs[1].SLA.QueueBound = reqs[0].SLA.QueueBound
	a, b := mustJSON(t, reqs[0]), mustJSON(t, reqs[1])
	if !bytes.Equal(a, b) {
		t.Fatalf("learned gate files differ beyond the queue bound:\n%s\n%s", a, b)
	}
}

// TestLearnedPolicyStatusEndpoint: a daemon running the shipped Q-table
// reports the learned policy and its hyperparameters on /v1/autoscaler.
func TestLearnedPolicyStatusEndpoint(t *testing.T) {
	tbl, err := loadQTable(shippedQTablePath)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newTestServer(t,
		disarcloud.WithWorkers(tbl.Spec.MinWorkers),
		disarcloud.WithElastic(disarcloud.ElasticConfig{
			MinWorkers: tbl.Spec.MinWorkers,
			MaxWorkers: tbl.Spec.MaxWorkers,
		}),
		disarcloud.WithLearnedPolicy(tbl),
	)
	resp, err := http.Get(srv.URL + "/v1/autoscaler")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[autoscalerJSON](t, resp)
	if !st.Enabled || st.Policy != "learned" {
		t.Fatalf("autoscaler status %+v, want the learned policy", st)
	}
	if st.PolicyParams["states"] != float64(tbl.Spec.NumStates()) ||
		st.PolicyParams["alpha"] != tbl.Spec.Alpha {
		t.Fatalf("policy_params %v missing the table hyperparameters", st.PolicyParams)
	}
}
