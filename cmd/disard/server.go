package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"disarcloud"
)

// server binds the HTTP surface to one Service. newHandler is the testable
// constructor: httptest servers wrap it directly, without a listener.
type server struct {
	svc  *disarcloud.Service
	d    *disarcloud.Deployer
	seed uint64
	// defaultProxy, when non-nil, routes every job that does not carry its
	// own "proxy" section through the LSMC proxy serving tier (-proxy flag).
	defaultProxy *disarcloud.ProxySpec
	// defaultTiers are the purchasing tiers offered to jobs without their own
	// "tier" field (-spot flag); nil means on-demand only.
	defaultTiers []disarcloud.Tier
	// defaultBudget, when positive, caps jobs that do not carry their own
	// "budget" field (-max-cost flag).
	defaultBudget float64
	// cluster, when non-nil, attaches coordinator mode: the cluster API and
	// status endpoint, and consistent-hash submission routing across peer
	// coordinators (-cluster / -peers flags).
	cluster *clusterState
	// jobSeq derives distinct per-job default seeds; atomic so concurrent
	// submits never share one.
	jobSeq atomic.Uint64
}

func newHandler(svc *disarcloud.Service, d *disarcloud.Deployer, seed uint64, defaultProxy *disarcloud.ProxySpec, cl *clusterState, defaultTiers []disarcloud.Tier, defaultBudget float64) http.Handler {
	s := &server{svc: svc, d: d, seed: seed, defaultProxy: defaultProxy, cluster: cl,
		defaultTiers: defaultTiers, defaultBudget: defaultBudget}
	mux := http.NewServeMux()
	if cl != nil && cl.coord != nil {
		cl.coord.Routes(mux)
		mux.HandleFunc("GET /v1/cluster", s.clusterStatus)
	}
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.progress)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("POST /v1/campaigns", s.submitCampaign)
	mux.HandleFunc("GET /v1/campaigns", s.listCampaigns)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.campaignStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/result", s.campaignResult)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.cancelCampaign)
	mux.HandleFunc("GET /v1/autoscaler", s.autoscaler)
	mux.HandleFunc("GET /v1/autoscaler/events", s.autoscalerEvents)
	mux.HandleFunc("GET /v1/forecast", s.forecast)
	mux.HandleFunc("GET /v1/proxy", s.proxy)
	mux.HandleFunc("POST /v1/loadgen/trace", s.loadgenTrace)
	mux.HandleFunc("GET /v1/cost", s.cost)
	mux.HandleFunc("GET /healthz", s.health)
	return mux
}

// jobRequest is the submit body; zero fields take the documented defaults.
type jobRequest struct {
	Portfolio   int     `json:"portfolio"`
	Contracts   int     `json:"contracts"`
	FundAssets  int     `json:"fund_assets"`
	Outer       int     `json:"outer"`
	Inner       int     `json:"inner"`
	TmaxSeconds float64 `json:"tmax_seconds"`
	MaxNodes    int     `json:"max_nodes"`
	// Epsilon is a pointer so an explicit 0 (no exploration) is
	// distinguishable from an omitted field (default 0.05).
	Epsilon    *float64 `json:"epsilon"`
	MaxWorkers int      `json:"max_workers"`
	Seed       uint64   `json:"seed"`
	// PaceFactor makes the job occupy real wall-clock time proportional to
	// its simulated execution time (SimulationSpec.PaceFactor) — the knob
	// load experiments use to exercise the pool and the autoscaler.
	PaceFactor float64 `json:"pace_factor"`
	// Proxy, when present, routes the valuation through the LSMC proxy
	// serving tier instead of the plain nested pipeline. An empty object
	// {} selects the tier with all defaults; omitting the field uses the
	// daemon's -proxy default (if any).
	Proxy *proxyRequest `json:"proxy"`
	// Budget caps the job's billed dollars; a pointer so an explicit 0
	// (unlimited — lifts the daemon's -max-cost default for this job) is
	// distinguishable from an omitted field (which takes that default).
	// Values above the request ceiling are clamped, not rejected.
	Budget *float64 `json:"budget"`
	// Tier names the purchasing tiers the selector may buy: "on-demand",
	// "reserved" (on-demand + reserved), "spot" (on-demand + spot) or "any".
	// Empty uses the daemon's default (-spot selects "any").
	Tier string `json:"tier"`
}

// proxyRequest is the per-job proxy-tier section of a submit body; zero
// fields take the proxyval defaults.
type proxyRequest struct {
	TrainOuter    int     `json:"train_outer"`
	TrainInner    int     `json:"train_inner"`
	ErrorBudget   float64 `json:"error_budget"`
	EscalationCap float64 `json:"escalation_cap"`
	Model         string  `json:"model"`
	Degree        int     `json:"degree"`
}

// campaignRequest is the stress-campaign submit body: a base valuation
// request plus campaign switches.
type campaignRequest struct {
	jobRequest
	// NoReuse disables scenario-set reuse (every module regenerates paths).
	NoReuse bool `json:"no_reuse"`
	// Longevity adds the optional longevity module to the standard seven.
	Longevity bool `json:"longevity"`
}

// Request ceilings: one HTTP client must not be able to pin a worker slot
// (and the daemon's memory) indefinitely with an arbitrarily large
// valuation. Legitimate bigger jobs belong on a dedicated deployment with
// its own limits.
const (
	maxReqContracts  = 1000
	maxReqFundAssets = 64
	maxReqOuter      = 1_000_000
	maxReqInner      = 10_000
	maxReqNodes      = 64
	maxReqWorkers    = 64
	// maxReqPace bounds pace_factor: simulated execution times run to a few
	// thousand seconds, so 0.01 caps the wall-clock occupancy per job at
	// tens of seconds.
	maxReqPace = 0.01
	// maxReqProxyTrain bounds the proxy training sample: each training point
	// is one full nested valuation, so an unbounded sample would let the
	// "fast path" request arbitrarily much Monte Carlo work up front.
	maxReqProxyTrain = 5000
	// maxReqProxyDegree mirrors the proxyval basis-degree ceiling: the
	// tensor basis is exponential in the degree.
	maxReqProxyDegree = 6
	// maxReqBudget caps a per-job budget: past a million dollars the field is
	// not a constraint any more, and a finite ceiling keeps degenerate huge
	// values out of the accountant's arithmetic. Larger budgets clamp here.
	maxReqBudget = 1e6
)

// validate rejects proxy sections that are out of range before they reach
// spec validation, with request-vocabulary errors. Zero fields are legal
// (they resolve to the proxyval defaults).
func (p *proxyRequest) validate() error {
	switch {
	case p.TrainOuter < 0 || p.TrainOuter > maxReqProxyTrain:
		return fmt.Errorf("proxy.train_outer %d outside [0,%d]", p.TrainOuter, maxReqProxyTrain)
	case p.TrainInner < 0 || p.TrainInner > maxReqInner:
		return fmt.Errorf("proxy.train_inner %d outside [0,%d]", p.TrainInner, maxReqInner)
	case math.IsNaN(p.ErrorBudget) || p.ErrorBudget < 0 || p.ErrorBudget > 1:
		// 0 means "default"; an explicit budget must lie in (0,1].
		return fmt.Errorf("proxy.error_budget %v outside (0,1]", p.ErrorBudget)
	case math.IsNaN(p.EscalationCap) || p.EscalationCap < 0 || p.EscalationCap > 1:
		return fmt.Errorf("proxy.escalation_cap %v outside (0,1]", p.EscalationCap)
	case p.Degree < 0 || p.Degree > maxReqProxyDegree:
		return fmt.Errorf("proxy.degree %d outside [0,%d]", p.Degree, maxReqProxyDegree)
	}
	if p.Model != "" {
		ok := false
		for _, m := range disarcloud.ProxyModels() {
			if p.Model == m {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("proxy.model %q not one of %v", p.Model, disarcloud.ProxyModels())
		}
	}
	return nil
}

// spec maps the request section onto a proxy spec, clamping a positive but
// too-small training sample up to the usable minimum rather than failing
// the whole job over a knob the tier can round.
func (p *proxyRequest) spec() *disarcloud.ProxySpec {
	train := p.TrainOuter
	if train > 0 && train < disarcloud.MinProxyTrainOuter {
		train = disarcloud.MinProxyTrainOuter
	}
	return &disarcloud.ProxySpec{
		TrainOuter:    train,
		TrainInner:    p.TrainInner,
		ErrorBudget:   p.ErrorBudget,
		EscalationCap: p.EscalationCap,
		Model:         p.Model,
		Degree:        p.Degree,
	}
}

func (r *jobRequest) applyDefaults(serverSeed, jobNumber uint64) {
	if r.Contracts <= 0 {
		r.Contracts = 20
	}
	if r.FundAssets <= 0 {
		r.FundAssets = 6
	}
	if r.Outer <= 0 {
		r.Outer = 200
	}
	if r.Inner <= 0 {
		r.Inner = 10
	}
	if r.TmaxSeconds <= 0 {
		r.TmaxSeconds = 900
	}
	if r.MaxNodes <= 0 {
		r.MaxNodes = 8
	}
	if r.Epsilon == nil {
		eps := 0.05
		r.Epsilon = &eps
	}
	if r.Seed == 0 {
		r.Seed = serverSeed + jobNumber*2654435761 + 1
	}
}

func (r *jobRequest) validate() error {
	switch {
	case r.Contracts > maxReqContracts:
		return fmt.Errorf("contracts %d exceeds the limit %d", r.Contracts, maxReqContracts)
	case r.FundAssets > maxReqFundAssets:
		return fmt.Errorf("fund_assets %d exceeds the limit %d", r.FundAssets, maxReqFundAssets)
	case r.Outer > maxReqOuter:
		return fmt.Errorf("outer %d exceeds the limit %d", r.Outer, maxReqOuter)
	case r.Inner > maxReqInner:
		return fmt.Errorf("inner %d exceeds the limit %d", r.Inner, maxReqInner)
	case r.MaxNodes > maxReqNodes:
		return fmt.Errorf("max_nodes %d exceeds the limit %d", r.MaxNodes, maxReqNodes)
	case r.MaxWorkers > maxReqWorkers:
		return fmt.Errorf("max_workers %d exceeds the limit %d", r.MaxWorkers, maxReqWorkers)
	case *r.Epsilon < 0 || *r.Epsilon > 1:
		// Found by FuzzJobRequestDecode: an out-of-range exploration
		// probability used to slip through to spec validation.
		return fmt.Errorf("epsilon %v outside [0,1]", *r.Epsilon)
	case r.PaceFactor < 0 || r.PaceFactor > maxReqPace || math.IsNaN(r.PaceFactor):
		return fmt.Errorf("pace_factor %v outside [0,%v]", r.PaceFactor, maxReqPace)
	}
	if r.Budget != nil && (math.IsNaN(*r.Budget) || *r.Budget < 0) {
		return fmt.Errorf("budget %v is not a non-negative dollar amount", *r.Budget)
	}
	if _, err := tiersOf(r.Tier, nil); err != nil {
		return err
	}
	if r.Proxy != nil {
		return r.Proxy.validate()
	}
	return nil
}

// tiersOf maps the request's tier name onto the purchasing tiers the
// selector may buy. The empty name takes the daemon default (on-demand when
// none was configured).
func tiersOf(name string, serverDefault []disarcloud.Tier) ([]disarcloud.Tier, error) {
	switch name {
	case "":
		return serverDefault, nil
	case "on-demand":
		return []disarcloud.Tier{disarcloud.TierOnDemand}, nil
	case "reserved":
		return []disarcloud.Tier{disarcloud.TierOnDemand, disarcloud.TierReserved}, nil
	case "spot":
		return []disarcloud.Tier{disarcloud.TierOnDemand, disarcloud.TierSpot}, nil
	case "any":
		return disarcloud.AllTiers(), nil
	default:
		return nil, fmt.Errorf("tier %q not one of on-demand, reserved, spot, any", name)
	}
}

// budgetOf resolves a request's budget against the daemon default, clamping
// at the request ceiling. +Inf means "explicitly unlimited" and clamps too.
func (s *server) budgetOf(req *jobRequest) float64 {
	b := s.defaultBudget
	if req.Budget != nil {
		b = *req.Budget
	}
	if b > maxReqBudget {
		b = maxReqBudget
	}
	return b
}

// buildSpec decodes, defaults and validates a job request into a simulation
// spec — shared by the single-job and campaign submit paths.
func (s *server) buildSpec(req *jobRequest) (disarcloud.SimulationSpec, error) {
	req.applyDefaults(s.seed, s.jobSeq.Add(1))
	if err := req.validate(); err != nil {
		return disarcloud.SimulationSpec{}, err
	}
	specs := disarcloud.ItalianCompanySpecs()
	if req.Portfolio < 0 || req.Portfolio >= len(specs) {
		return disarcloud.SimulationSpec{}, fmt.Errorf("portfolio index %d outside 0..%d", req.Portfolio, len(specs)-1)
	}
	gen := specs[req.Portfolio]
	gen.NumContracts = req.Contracts
	p, err := disarcloud.GeneratePortfolio(req.Seed+1, gen)
	if err != nil {
		return disarcloud.SimulationSpec{}, err
	}
	market := disarcloud.DefaultMarket(p.MaxTerm())
	var proxy *disarcloud.ProxySpec
	if req.Proxy != nil {
		proxy = req.Proxy.spec()
	} else if s.defaultProxy != nil {
		cp := *s.defaultProxy
		proxy = &cp
	}
	tiers, err := tiersOf(req.Tier, s.defaultTiers)
	if err != nil {
		return disarcloud.SimulationSpec{}, err
	}
	return disarcloud.SimulationSpec{
		Portfolio: p,
		Fund:      disarcloud.TypicalItalianFund(req.FundAssets, market),
		Market:    market,
		Outer:     req.Outer,
		Inner:     req.Inner,
		Constraints: disarcloud.Constraints{
			TmaxSeconds: req.TmaxSeconds, MaxNodes: req.MaxNodes, Epsilon: *req.Epsilon,
			MaxCost: s.budgetOf(req), Tiers: tiers,
		},
		MaxWorkers: req.MaxWorkers,
		Seed:       req.Seed,
		PaceFactor: req.PaceFactor,
		Proxy:      proxy,
	}, nil
}

// writeSubmitError maps a Submit/SubmitCampaign error onto the response.
// Budget rejections get their own structured body: the client asked for
// something the money cannot buy, so the body names the cheapest feasible
// cost to resubmit with — a 400 without Retry-After, because no amount of
// waiting makes the same budget sufficient.
func writeSubmitError(w http.ResponseWriter, err error) {
	var be *disarcloud.BudgetError
	if errors.As(err, &be) {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":        be.Error(),
			"cheapest_usd": be.CheapestUSD,
			"max_cost_usd": be.MaxCostUSD,
		})
		return
	}
	httpError(w, submitStatus(w, err), err)
}

// submitStatus maps a Submit/SubmitCampaign error to its HTTP status and
// stamps backpressure headers.
func submitStatus(w http.ResponseWriter, err error) int {
	status := http.StatusBadRequest
	if errors.Is(err, disarcloud.ErrServiceClosed) {
		status = http.StatusServiceUnavailable
	}
	if errors.Is(err, disarcloud.ErrQueueFull) {
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	}
	var adm *disarcloud.AdmissionError
	if errors.As(err, &adm) {
		if adm.Infeasible {
			// The job's own predicted runtime busts its tmax: retrying is
			// pointless, so this is a client error, not backpressure.
			return http.StatusBadRequest
		}
		// Deadline-aware admission rejection: the backlog cannot drain in
		// time for this job's Tmax. Tell the client when to retry — the
		// estimated backlog drain time, rounded up to a whole second.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(adm.RetryAfterSeconds)))
		status = http.StatusServiceUnavailable
	}
	return status
}

// maxRetryAfterSeconds caps the Retry-After header at one day: past that,
// the estimate is telling the client "much later", and a ceiling keeps a
// degenerate huge-but-finite prediction from overflowing the int
// conversion (implementation-defined, negative on amd64 — which clients
// read as retry-immediately).
const maxRetryAfterSeconds = 86400

// retryAfterSeconds maps a backlog-drain estimate onto the whole-second
// Retry-After header value. The clamps are load-bearing: a zero or
// sub-second estimate must round UP to 1 — `Retry-After: 0` tells clients
// to hammer the endpoint immediately, turning backpressure into a retry
// storm — and an absurd estimate must cap, not overflow. The comparisons
// are written so NaN (int conversion of which is platform-defined) and
// negative estimates land on the 1-second floor, while +Inf lands on the
// one-day cap.
func retryAfterSeconds(estimate float64) int {
	ceil := math.Ceil(estimate)
	switch {
	case ceil >= maxRetryAfterSeconds: // also catches +Inf
		return maxRetryAfterSeconds
	case ceil > 1:
		return int(ceil)
	default: // <=1, negative, NaN
		return 1
	}
}

type jobStatusJSON struct {
	ID          string    `json:"id"`
	Status      string    `json:"status"`
	Error       string    `json:"error,omitempty"`
	Done        int       `json:"done"`
	Total       int       `json:"total"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

func snapshotJSON(s disarcloud.JobSnapshot) jobStatusJSON {
	return jobStatusJSON{
		ID: string(s.ID), Status: s.Status.String(), Error: s.Error,
		Done: s.Done, Total: s.Total,
		SubmittedAt: s.SubmittedAt, StartedAt: s.StartedAt, FinishedAt: s.FinishedAt,
	}
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, handle := s.readRouted(w, r, "/v1/jobs")
	if !handle {
		return
	}
	var req jobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	spec, err := s.buildSpec(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// The job must outlive this HTTP request: submit under the server's
	// context, not the request's, so clients can fire and poll.
	id, err := s.svc.Submit(context.Background(), spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": string(id)})
}

func (s *server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := s.svc.Jobs()
	out := make([]jobStatusJSON, len(jobs))
	for i, j := range jobs {
		out[i] = snapshotJSON(j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	snap, err := s.svc.Status(disarcloud.JobID(r.PathValue("id")))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotJSON(snap))
}

type blockResultJSON struct {
	BEL    float64 `json:"bel"`
	SCR    float64 `json:"scr"`
	StdErr float64 `json:"stderr"`
}

type resultJSON struct {
	Status string                     `json:"status"`
	BEL    float64                    `json:"bel"`
	SCR    float64                    `json:"scr"`
	Blocks map[string]blockResultJSON `json:"blocks"`
	Deploy deployJSON                 `json:"deploy"`
	// Cost is the money side of the deploy, including the budget state when
	// the job carried one.
	Cost disarcloud.CostReport `json:"cost"`
	// Proxy carries the serving telemetry when the job ran through the
	// LSMC proxy tier; absent for plain nested valuations.
	Proxy *proxyReportJSON `json:"proxy,omitempty"`
}

// proxyReportJSON is the per-job serving record: gate configuration, merged
// totals with the fast-path hit rate, and the per-block stats.
type proxyReportJSON struct {
	ErrorBudget float64                          `json:"error_budget"`
	HitRate     float64                          `json:"hit_rate"`
	Totals      disarcloud.ProxyStats            `json:"totals"`
	Blocks      map[string]disarcloud.ProxyStats `json:"blocks"`
}

func proxyReportJSONOf(rep *disarcloud.ProxyReport) *proxyReportJSON {
	if rep == nil {
		return nil
	}
	out := &proxyReportJSON{
		ErrorBudget: rep.ErrorBudget,
		HitRate:     rep.Totals.HitRate(),
		Totals:      rep.Totals,
		Blocks:      make(map[string]disarcloud.ProxyStats, len(rep.PerBlock)),
	}
	for id, st := range rep.PerBlock {
		out.Blocks[id] = st
	}
	return out
}

type deployJSON struct {
	Choice           string  `json:"choice"`
	Tier             string  `json:"tier"`
	PredictedSeconds float64 `json:"predicted_seconds"`
	ActualSeconds    float64 `json:"actual_seconds"`
	ProRataUSD       float64 `json:"prorata_usd"`
	BilledUSD        float64 `json:"billed_usd"`
	OnDemandUSD      float64 `json:"on_demand_usd"`
	Revocations      int     `json:"revocations"`
	Bootstrap        bool    `json:"bootstrap"`
	Fallback         bool    `json:"fallback"`
	KBSize           int     `json:"kb_size"`
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	id := disarcloud.JobID(r.PathValue("id"))
	snap, err := s.svc.Status(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	if !snap.Status.Terminal() && !wait {
		writeJSON(w, http.StatusAccepted, snapshotJSON(snap))
		return
	}
	rep, err := s.svc.Result(r.Context(), id)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Either the client went away mid-wait or the job was cancelled;
			// disambiguate via the job's own state.
			snap, serr := s.svc.Status(id)
			if serr == nil && snap.Status.Terminal() {
				writeJSON(w, http.StatusOK, snapshotJSON(snap))
				return
			}
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := resultJSON{
		Status: disarcloud.JobDone.String(),
		BEL:    rep.BEL,
		SCR:    rep.SCR,
		Blocks: make(map[string]blockResultJSON, len(rep.Results)),
		Deploy: deployJSON{
			Choice:           rep.Deploy.Choice.String(),
			Tier:             rep.Deploy.Choice.Tier.String(),
			PredictedSeconds: rep.Deploy.PredictedSeconds,
			ActualSeconds:    rep.Deploy.ActualSeconds,
			ProRataUSD:       rep.Deploy.ProRataUSD,
			BilledUSD:        rep.Deploy.BilledUSD,
			OnDemandUSD:      rep.Deploy.OnDemandUSD,
			Revocations:      rep.Deploy.Revocations,
			Bootstrap:        rep.Deploy.Bootstrap,
			Fallback:         rep.Deploy.Fallback,
			KBSize:           rep.Deploy.KBSize,
		},
		Cost:  rep.Cost,
		Proxy: proxyReportJSONOf(rep.Proxy),
	}
	for bid, res := range rep.Results {
		out.Blocks[bid] = blockResultJSON{BEL: res.BEL, SCR: res.SCR, StdErr: res.StdErr}
	}
	writeJSON(w, http.StatusOK, out)
}

// streamNDJSON is the shared skeleton of the streaming endpoints: headers
// flushed immediately (the first event may be a long time away), one JSON
// line per event until the channel closes or the client disconnects, and an
// optional final line once the stream ends.
func streamNDJSON[T any](w http.ResponseWriter, r *http.Request, events <-chan T,
	encode func(T) any, final func() (any, bool)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				if final != nil {
					if v, ok := final(); ok {
						_ = enc.Encode(v)
					}
				}
				return
			}
			_ = enc.Encode(encode(ev))
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func (s *server) progress(w http.ResponseWriter, r *http.Request) {
	id := disarcloud.JobID(r.PathValue("id"))
	events, unsub, err := s.svc.Progress(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	defer unsub()
	streamNDJSON(w, r, events,
		func(ev disarcloud.Progress) any {
			return map[string]any{"block": ev.BlockID, "done": ev.Done, "total": ev.Total}
		},
		func() (any, bool) {
			// Job terminal: emit the final snapshot as the last line.
			snap, err := s.svc.Status(id)
			if err != nil {
				return nil, false
			}
			return snapshotJSON(snap), true
		})
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	id := disarcloud.JobID(r.PathValue("id"))
	if err := s.svc.Cancel(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	snap, _ := s.svc.Status(id)
	writeJSON(w, http.StatusOK, snapshotJSON(snap))
}

type campaignStatusJSON struct {
	ID          string          `json:"id"`
	Status      string          `json:"status"`
	Done        int             `json:"done"`
	Total       int             `json:"total"`
	SubmittedAt time.Time       `json:"submitted_at"`
	Jobs        []jobStatusJSON `json:"jobs"`
}

func campaignSnapshotJSON(c disarcloud.CampaignSnapshot) campaignStatusJSON {
	out := campaignStatusJSON{
		ID: string(c.ID), Status: c.Status.String(),
		Done: c.Done, Total: c.Total, SubmittedAt: c.SubmittedAt,
	}
	for _, j := range c.Jobs {
		out.Jobs = append(out.Jobs, snapshotJSON(j))
	}
	return out
}

type moduleResultJSON struct {
	Module   string  `json:"module"`
	Job      string  `json:"job"`
	BEL      float64 `json:"bel"`
	DeltaBEL float64 `json:"delta_bel"`
}

type campaignResultJSON struct {
	Status     string             `json:"status"`
	BaseJob    string             `json:"base_job"`
	BaseBEL    float64            `json:"base_bel"`
	BaseVaRSCR float64            `json:"base_var_scr"`
	Modules    []moduleResultJSON `json:"modules"`
	SCR        scrJSON            `json:"scr"`
}

type scrJSON struct {
	Interest            float64 `json:"interest"`
	InterestDownBinding bool    `json:"interest_down_binding"`
	Market              float64 `json:"market"`
	Life                float64 `json:"life"`
	Other               float64 `json:"other,omitempty"`
	BSCR                float64 `json:"bscr"`
}

func (s *server) submitCampaign(w http.ResponseWriter, r *http.Request) {
	body, handle := s.readRouted(w, r, "/v1/campaigns")
	if !handle {
		return
	}
	var req campaignRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	spec, err := s.buildSpec(&req.jobRequest)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	shocks := disarcloud.StandardFormulaShocks()
	if req.Longevity {
		shocks = append(shocks, disarcloud.LongevityShock())
	}
	// Like single jobs, the campaign outlives the HTTP request.
	id, err := s.svc.SubmitCampaign(context.Background(), disarcloud.CampaignSpec{
		Base:            spec,
		Shocks:          shocks,
		NoScenarioReuse: req.NoReuse,
	})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": string(id)})
}

func (s *server) listCampaigns(w http.ResponseWriter, _ *http.Request) {
	camps := s.svc.Campaigns()
	out := make([]campaignStatusJSON, len(camps))
	for i, c := range camps {
		out[i] = campaignSnapshotJSON(c)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) campaignStatus(w http.ResponseWriter, r *http.Request) {
	snap, err := s.svc.CampaignStatus(disarcloud.CampaignID(r.PathValue("id")))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, campaignSnapshotJSON(snap))
}

func (s *server) campaignResult(w http.ResponseWriter, r *http.Request) {
	id := disarcloud.CampaignID(r.PathValue("id"))
	snap, err := s.svc.CampaignStatus(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	if !snap.Status.Terminal() && !wait {
		writeJSON(w, http.StatusAccepted, campaignSnapshotJSON(snap))
		return
	}
	rep, err := s.svc.CampaignResult(r.Context(), id)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			snap, serr := s.svc.CampaignStatus(id)
			if serr == nil && snap.Status.Terminal() {
				writeJSON(w, http.StatusOK, campaignSnapshotJSON(snap))
				return
			}
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := campaignResultJSON{
		Status:     disarcloud.JobDone.String(),
		BaseJob:    string(rep.BaseJob),
		BaseBEL:    rep.BaseBEL,
		BaseVaRSCR: rep.BaseVaRSCR,
		SCR: scrJSON{
			Interest:            rep.SCR.Interest,
			InterestDownBinding: rep.SCR.InterestDownBinding,
			Market:              rep.SCR.Market,
			Life:                rep.SCR.Life,
			Other:               rep.SCR.Other,
			BSCR:                rep.SCR.BSCR,
		},
	}
	for _, m := range rep.Modules {
		out.Modules = append(out.Modules, moduleResultJSON{
			Module: string(m.Module), Job: string(m.Job), BEL: m.BEL, DeltaBEL: m.DeltaBEL,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) cancelCampaign(w http.ResponseWriter, r *http.Request) {
	id := disarcloud.CampaignID(r.PathValue("id"))
	if err := s.svc.CancelCampaign(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	snap, _ := s.svc.CampaignStatus(id)
	writeJSON(w, http.StatusOK, campaignSnapshotJSON(snap))
}

type scalingEventJSON struct {
	At      time.Time `json:"at"`
	From    int       `json:"from"`
	Target  int       `json:"target"`
	Reason  string    `json:"reason"`
	Queued  int       `json:"queued"`
	Running int       `json:"running"`
}

func scalingEventJSONOf(ev disarcloud.ScalingEvent) scalingEventJSON {
	return scalingEventJSON{
		At: ev.At, From: ev.From, Target: ev.Target, Reason: ev.Reason,
		Queued: ev.Signals.Queued, Running: ev.Signals.InFlight,
	}
}

type autoscalerJSON struct {
	Enabled bool `json:"enabled"`
	// Policy names the decision layer in force ("reactive", "hybrid",
	// "learned", or a custom WithScalingPolicy implementation); empty on a
	// fixed pool.
	Policy string `json:"policy,omitempty"`
	// PolicyParams are the active policy's hyperparameters — controller
	// thresholds for reactive/hybrid, the Q-table's training
	// hyperparameters for learned.
	PolicyParams      map[string]float64 `json:"policy_params,omitempty"`
	Workers           int                `json:"workers"`
	LiveWorkers       int                `json:"live_workers"`
	Queued            int                `json:"queued"`
	InFlight          int                `json:"in_flight"`
	BacklogETASeconds float64            `json:"backlog_eta_seconds"`
	MinWorkers        int                `json:"min_workers,omitempty"`
	MaxWorkers        int                `json:"max_workers,omitempty"`
	// DroppedEvents counts scaling events lost to slow subscribers over
	// the service lifetime — the NDJSON events stream below is itself the
	// likeliest laggard, so the daemon's operators need the gauge here.
	DroppedEvents uint64             `json:"dropped_events"`
	Recent        []scalingEventJSON `json:"recent"`
}

// autoscaler reports the elastic control plane: pool gauges, bounds, and the
// recent scaling decisions with their reasons.
func (s *server) autoscaler(w http.ResponseWriter, _ *http.Request) {
	st := s.svc.AutoscalerStatus()
	out := autoscalerJSON{
		Enabled:           st.Enabled,
		Policy:            st.Policy,
		PolicyParams:      st.PolicyParams,
		Workers:           st.Workers,
		LiveWorkers:       st.LiveWorkers,
		Queued:            st.Queued,
		InFlight:          st.InFlight,
		BacklogETASeconds: st.BacklogETASeconds,
		DroppedEvents:     st.DroppedEvents,
		Recent:            []scalingEventJSON{},
	}
	if st.Enabled {
		out.MinWorkers = st.Config.MinWorkers
		out.MaxWorkers = st.Config.MaxWorkers
	}
	for _, ev := range st.Recent {
		out.Recent = append(out.Recent, scalingEventJSONOf(ev))
	}
	writeJSON(w, http.StatusOK, out)
}

// autoscalerEvents streams scaling decisions as NDJSON until the client
// disconnects or the service closes, mirroring the per-job progress stream.
func (s *server) autoscalerEvents(w http.ResponseWriter, r *http.Request) {
	events, unsub := s.svc.AutoscalerEvents(64)
	defer unsub()
	streamNDJSON(w, r, events,
		func(ev disarcloud.ScalingEvent) any { return scalingEventJSONOf(ev) },
		nil)
}

type forecastScoreJSON struct {
	Model string `json:"model"`
	// SMAPE is a pointer so a legitimate perfect score of 0 (reachable on
	// an all-zero idle series) stays distinguishable from "not evaluated":
	// present iff the candidate was scored, absent iff Skipped says why.
	SMAPE   *float64 `json:"smape,omitempty"`
	Origins int      `json:"origins,omitempty"`
	Skipped string   `json:"skipped,omitempty"`
}

type forecastJSON struct {
	Enabled      bool   `json:"enabled"`
	Samples      int    `json:"samples"`
	TotalSamples uint64 `json:"total_samples"`
	Model        string `json:"model,omitempty"`
	// SMAPE is a pointer for the same reason as forecastScoreJSON.SMAPE: a
	// perfect 0 on an idle series must stay distinguishable from "no model
	// selected yet". Present iff Model is set.
	SMAPE                *float64            `json:"smape,omitempty"`
	Scores               []forecastScoreJSON `json:"scores,omitempty"`
	NextIntervalArrivals float64             `json:"next_interval_arrivals"`
	MeanRuntimeSeconds   float64             `json:"mean_runtime_seconds"`
	PlannerTarget        int                 `json:"planner_target"`
	Headroom             float64             `json:"headroom,omitempty"`
	Window               int                 `json:"window,omitempty"`
	MinSamples           int                 `json:"min_samples,omitempty"`
	LastError            string              `json:"last_error,omitempty"`
}

// forecast reports the proactive provisioning subsystem: recorder fill,
// the model-selection scoreboard, and the planner's latest feed-forward
// target. On a service without -forecast only {"enabled": false} is live.
func (s *server) forecast(w http.ResponseWriter, _ *http.Request) {
	st := s.svc.ForecastStatus()
	out := forecastJSON{
		Enabled:              st.Enabled,
		Samples:              st.Samples,
		TotalSamples:         st.TotalSamples,
		Model:                st.Model,
		NextIntervalArrivals: st.NextIntervalArrivals,
		MeanRuntimeSeconds:   st.MeanRuntimeSeconds,
		PlannerTarget:        st.PlannerTarget,
		Headroom:             st.Headroom,
		Window:               st.Window,
		MinSamples:           st.MinSamples,
		LastError:            st.LastError,
	}
	if st.Model != "" {
		v := st.SMAPE
		out.SMAPE = &v
	}
	for _, sc := range st.Scores {
		sj := forecastScoreJSON{Model: sc.Name, Origins: sc.Origins, Skipped: sc.Skipped}
		// Skipped candidates carry sMAPE = +Inf, which encoding/json rejects
		// (the whole response body would silently come out empty); omit the
		// field instead — Skipped already says why there is no score.
		if sc.Skipped == "" && !math.IsInf(sc.SMAPE, 0) && !math.IsNaN(sc.SMAPE) {
			v := sc.SMAPE
			sj.SMAPE = &v
		}
		out.Scores = append(out.Scores, sj)
	}
	writeJSON(w, http.StatusOK, out)
}

type proxyDefaultJSON struct {
	TrainOuter    int     `json:"train_outer"`
	TrainInner    int     `json:"train_inner,omitempty"`
	ErrorBudget   float64 `json:"error_budget"`
	EscalationCap float64 `json:"escalation_cap"`
	Model         string  `json:"model"`
	Degree        int     `json:"degree"`
}

type proxyStatusJSON struct {
	// Enabled says whether the daemon applies a default proxy spec to jobs
	// that do not carry their own "proxy" section (-proxy flag). Per-job
	// proxy sections work either way.
	Enabled bool              `json:"enabled"`
	Default *proxyDefaultJSON `json:"default,omitempty"`
	// Jobs, Totals and HitRate aggregate every proxied job the service has
	// completed.
	Jobs    int                   `json:"jobs"`
	HitRate float64               `json:"hit_rate"`
	Totals  disarcloud.ProxyStats `json:"totals"`
}

// proxy reports the LSMC proxy serving tier: whether the daemon proxies by
// default, the resolved default spec, and the service-level hit-rate and
// error telemetry over all proxied jobs.
func (s *server) proxy(w http.ResponseWriter, _ *http.Request) {
	st := s.svc.ProxyStatus()
	out := proxyStatusJSON{
		Enabled: s.defaultProxy != nil,
		Jobs:    st.Jobs,
		HitRate: st.HitRate,
		Totals:  st.Totals,
	}
	if s.defaultProxy != nil {
		d := s.defaultProxy.WithDefaults()
		out.Default = &proxyDefaultJSON{
			TrainOuter:    d.TrainOuter,
			TrainInner:    d.TrainInner,
			ErrorBudget:   d.ErrorBudget,
			EscalationCap: d.EscalationCap,
			Model:         d.Model,
			Degree:        d.Degree,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// priceJSON is one catalog row of the cost endpoint: the hourly price of the
// instance type under each purchasing tier. Spot is the mean-reverting
// process's expected hourly rate, not a point-in-time quote.
type priceJSON struct {
	Type            string  `json:"type"`
	VCPUs           int     `json:"vcpus"`
	OnDemandUSD     float64 `json:"on_demand_usd"`
	ReservedUSD     float64 `json:"reserved_usd"`
	SpotExpectedUSD float64 `json:"spot_expected_usd"`
}

type costJSON struct {
	// SpotEnabled says whether jobs without their own "tier" field may buy
	// spot capacity (-spot flag).
	SpotEnabled bool `json:"spot_enabled"`
	// DefaultMaxCostUSD is the daemon's per-job budget default (-max-cost);
	// absent when jobs are unbounded by default.
	DefaultMaxCostUSD float64 `json:"default_max_cost_usd,omitempty"`
	// Totals aggregates the money side of every completed deploy.
	Totals disarcloud.CostReport `json:"totals"`
	Prices []priceJSON           `json:"prices"`
}

// cost reports the cost-aware provisioning plane: the daemon's purchasing
// defaults, the service-lifetime spend, and the per-tier price card.
func (s *server) cost(w http.ResponseWriter, _ *http.Request) {
	ps := s.d.Provider().PriceSchedule()
	spot := false
	for _, tier := range s.defaultTiers {
		if tier == disarcloud.TierSpot {
			spot = true
		}
	}
	out := costJSON{
		SpotEnabled:       spot,
		DefaultMaxCostUSD: s.defaultBudget,
		Totals:            s.svc.CostStatus(),
	}
	for _, it := range disarcloud.Catalog() {
		out.Prices = append(out.Prices, priceJSON{
			Type:            it.Name,
			VCPUs:           it.VCPUs,
			OnDemandUSD:     ps.HourlyUSD(it, disarcloud.TierOnDemand, 0),
			ReservedUSD:     ps.HourlyUSD(it, disarcloud.TierReserved, 0),
			SpotExpectedUSD: ps.ExpectedHourlyUSD(it, disarcloud.TierSpot),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// traceRequest is the synthetic-trace preview body: a loadgen spec as the
// experiments consume it, so scaling policies can be dry-run against the
// exact demand curve an experiment would replay.
type traceRequest struct {
	Kind       string  `json:"kind"`
	Intervals  int     `json:"intervals"`
	Seed       uint64  `json:"seed"`
	BaseRate   float64 `json:"base_rate"`
	PeakRate   float64 `json:"peak_rate"`
	Period     int     `json:"period"`
	BurstProb  float64 `json:"burst_prob"`
	CalmProb   float64 `json:"calm_prob"`
	FlashAt    float64 `json:"flash_at"`
	FlashWidth int     `json:"flash_width"`
	// Rates includes the deterministic rate profile alongside the counts.
	Rates bool `json:"rates"`
}

// maxReqTraceIntervals caps an HTTP-requested trace: the JSON response is
// O(intervals), and previews past a few days of seconds-granularity load
// belong in an offline experiment, not a request handler.
const maxReqTraceIntervals = 100_000

// buildTraceSpec decodes, defaults and validates a trace request — the
// fuzz-covered path between client JSON and the loadgen generator.
func (s *server) buildTraceSpec(req *traceRequest) (disarcloud.TraceSpec, error) {
	if req.Kind == "" {
		req.Kind = string(disarcloud.TraceMixed)
	}
	if req.Intervals == 0 {
		req.Intervals = 120
	}
	if req.BaseRate == 0 {
		req.BaseRate = 2
	}
	if req.Seed == 0 {
		req.Seed = s.seed + s.jobSeq.Add(1)*0x9e3779b9
	}
	if req.Intervals > maxReqTraceIntervals {
		return disarcloud.TraceSpec{}, fmt.Errorf("intervals %d exceeds the limit %d", req.Intervals, maxReqTraceIntervals)
	}
	spec := disarcloud.TraceSpec{
		Kind:       disarcloud.TraceKind(req.Kind),
		Intervals:  req.Intervals,
		Seed:       req.Seed,
		BaseRate:   req.BaseRate,
		PeakRate:   req.PeakRate,
		Period:     req.Period,
		BurstProb:  req.BurstProb,
		CalmProb:   req.CalmProb,
		FlashAt:    req.FlashAt,
		FlashWidth: req.FlashWidth,
	}
	if err := spec.Validate(); err != nil {
		return disarcloud.TraceSpec{}, err
	}
	return spec, nil
}

type traceJSON struct {
	Kind      string    `json:"kind"`
	Intervals int       `json:"intervals"`
	Seed      uint64    `json:"seed"`
	Total     int       `json:"total"`
	Counts    []int     `json:"counts"`
	Rates     []float64 `json:"rates,omitempty"`
}

// loadgenTrace generates a seeded synthetic workload trace from the posted
// spec — per-interval arrival counts, plus the underlying deterministic
// rate profile when "rates" is set.
func (s *server) loadgenTrace(w http.ResponseWriter, r *http.Request) {
	var req traceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	spec, err := s.buildTraceSpec(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	counts, rates, err := disarcloud.GenerateTraceWithRates(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := traceJSON{
		Kind:      string(spec.Kind),
		Intervals: spec.Intervals,
		Seed:      spec.Seed,
		Total:     disarcloud.TraceTotal(counts),
		Counts:    counts,
	}
	if req.Rates {
		out.Rates = rates
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"kb_samples": s.d.KB().Len(),
		"jobs":       s.svc.JobCount(),
		"campaigns":  s.svc.CampaignCount(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
