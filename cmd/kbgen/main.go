// Command kbgen bootstraps a knowledge base by driving the self-optimizing
// loop over the paper's Section IV campaign (3 portfolios, 15 EEBs) until
// the requested number of samples is recorded, then writes it to JSON. The
// resulting file warm-starts cmd/disar and cmd/experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"disarcloud/internal/core"
	"disarcloud/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kbgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 1500, "target number of samples (paper: ~1500)")
		out     = flag.String("o", "kb.json", "output path")
		seed    = flag.Uint64("seed", 2016, "root seed")
		retrain = flag.Int("retrain-every", 5, "retraining cadence during the campaign")
	)
	flag.Parse()

	c, err := experiments.NewCampaign(*seed, core.WithRetrainEvery(*retrain))
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %d EEBs over 3 Italian-style portfolios\n", len(c.Workloads))
	if err := c.BuildKB(*n); err != nil {
		return err
	}
	k := c.Deployer.KB()
	fmt.Printf("knowledge base built: %d samples across %d architectures\n",
		k.Len(), len(k.Architectures()))
	if err := k.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("saved to %s\n", *out)
	return nil
}
