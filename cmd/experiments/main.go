// Command experiments regenerates the tables and figures of the paper's
// Section IV on the simulated substrate:
//
//	tableI   delta-bar per classifier per architecture
//	tableII  per-simulation average cost per architecture
//	fig2     real vs predicted execution time scatter
//	fig3     histogram of (predicted - real)
//	fig4     speedup of cloud deploys vs sequential execution
//	final    forced high-end / forced cheapest vs ML-selected
//	ablation ensemble, exploration, retraining and heterogeneity ablations
//	proxy    LSMC proxy serving tier: throughput-vs-accuracy frontier
//	cluster  campaign throughput on 1..8-worker clusters + mid-run worker kill
//	verify   exact MDP model checking of the scaling policies + Pareto sweep
//	cost     on-demand vs spot-heavy fleet: billed cost, revocations, SCR bit-compare
//	policy   reactive vs hybrid vs learned Q-table over the trace families
//	all      everything above
//
// A knowledge base of -kb samples is built through the self-optimizing loop
// first (or loaded from -kbfile when present).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"disarcloud/internal/cloud"
	"disarcloud/internal/core"
	"disarcloud/internal/experiments"
	"disarcloud/internal/kb"
	"disarcloud/internal/provision"
	"disarcloud/internal/rl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		which   = flag.String("run", "all", "experiment: tableI|tableII|fig2|fig3|fig4|final|ablation|proxy|cluster|verify|cost|policy|all")
		qtable  = flag.String("qtable", "testdata/qtable_v1.json", "trained Q-table for the policy experiment (trains the default spec when the file is absent)")
		kbSize  = flag.Int("kb", 1500, "knowledge-base samples to build (paper: ~1500)")
		kbFile  = flag.String("kbfile", "", "load the knowledge base from this JSON instead of building it")
		seed    = flag.Uint64("seed", 2016, "root seed")
		stride  = flag.Int("stride", 25, "print every n-th Figure 2 point")
		retrain = flag.Int("retrain-every", 5, "retraining cadence while building the KB")
	)
	flag.Parse()
	out := os.Stdout

	campaign, err := experiments.NewCampaign(*seed, core.WithRetrainEvery(*retrain))
	if err != nil {
		return err
	}
	var base *kb.KB
	// The proxy frontier, the cluster sweep and the policy experiments
	// value blocks (or pure models) directly; only build the (slow)
	// knowledge base when some requested experiment consumes it.
	if *which == "all" || !(strings.EqualFold(*which, "proxy") || strings.EqualFold(*which, "cluster") || strings.EqualFold(*which, "verify") || strings.EqualFold(*which, "cost") || strings.EqualFold(*which, "policy")) {
		if *kbFile != "" {
			base, err = kb.LoadFile(*kbFile)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "loaded %d samples from %s\n\n", base.Len(), *kbFile)
		} else {
			fmt.Fprintf(out, "building knowledge base of %d samples through the self-optimizing loop...\n", *kbSize)
			if err := campaign.BuildKB(*kbSize); err != nil {
				return err
			}
			base = campaign.Deployer.KB()
			fmt.Fprintf(out, "done: %d samples across %d architectures\n\n", base.Len(), len(base.Architectures()))
		}
	}

	want := func(name string) bool { return *which == "all" || strings.EqualFold(*which, name) }
	ranAny := false

	var acc *experiments.AccuracyResult
	needAccuracy := want("tableI") || want("fig2") || want("fig3")
	if needAccuracy {
		acc, err = experiments.EvaluateAccuracy(base, *seed+1, 0.4)
		if err != nil {
			return err
		}
	}
	if want("tableI") {
		acc.PrintTableI(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("fig2") {
		acc.PrintFigure2(out, *stride)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("fig3") {
		acc.PrintFigure3(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("tableII") {
		costs, err := experiments.EvaluateCosts(base)
		if err != nil {
			return err
		}
		costs.PrintTableII(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("fig4") {
		sp, err := experiments.EvaluateSpeedup(cloud.DefaultPerfModel(), campaign.Workloads)
		if err != nil {
			return err
		}
		sp.PrintFigure4(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("final") {
		// Retrain the campaign predictor on the final KB, then compare on
		// the largest EEB with a loose deadline.
		if err := campaign.Deployer.Predictor().Retrain(base); err != nil {
			return err
		}
		f := campaign.Workloads[0]
		for _, w := range campaign.Workloads {
			if w.Complexity() > f.Complexity() {
				f = w
			}
		}
		fin, err := experiments.EvaluateFinalComparison(
			campaign.Deployer.Selector(), cloud.DefaultPerfModel(), f,
			provision.Constraints{TmaxSeconds: 0, MaxNodes: 8, Epsilon: 0})
		if err != nil {
			return err
		}
		fin.PrintFinal(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("ablation") {
		ens, err := experiments.EvaluateEnsembleAblation(base, *seed+2)
		if err != nil {
			return err
		}
		ens.Print(out)
		fmt.Fprintln(out)

		eps, err := experiments.EvaluateEpsilonAblation(*seed+3, []float64{0, 0.1, 0.3}, 120)
		if err != nil {
			return err
		}
		eps.Print(out)
		fmt.Fprintln(out)

		ret, err := experiments.EvaluateRetrainAblation(*seed+4, 120)
		if err != nil {
			return err
		}
		ret.Print(out)
		fmt.Fprintln(out)

		het, err := experiments.EvaluateHeterogeneousAblation(
			cloud.DefaultPerfModel(), campaign.Workloads[4],
			[]float64{1.6, 1.3, 1.0, 0.85}, 6, *seed+5)
		if err != nil {
			return err
		}
		het.Print(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("proxy") {
		pc, err := experiments.RunProxyComparison(*seed+6, 2000, 200, nil, nil)
		if err != nil {
			return err
		}
		pc.Print(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("verify") {
		vr, err := experiments.RunVerifySweep()
		if err != nil {
			return err
		}
		vr.Print(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("cluster") {
		cc, err := experiments.RunClusterComparison(*seed+7, []int{1, 2, 4, 8}, 8)
		if err != nil {
			return err
		}
		cc.Print(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("cost") {
		cmp, err := experiments.RunCostComparison(*seed+8, 30)
		if err != nil {
			return err
		}
		cmp.PrintCostComparison(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if want("policy") {
		table, err := rl.LoadTableFile(*qtable)
		if err != nil {
			if !os.IsNotExist(err) {
				return err
			}
			fmt.Fprintf(out, "no Q-table at %s; training the default spec...\n", *qtable)
			if table, err = rl.Train(rl.DefaultSpec()); err != nil {
				return err
			}
		}
		pc, err := experiments.RunPolicyComparison(table)
		if err != nil {
			return err
		}
		pc.Print(out)
		fmt.Fprintln(out)
		ranAny = true
	}
	if !ranAny {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}
