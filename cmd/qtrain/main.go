// Command qtrain trains the shipped learned-autoscaling artifact: it runs
// tabular Q-learning with the frozen default spec against the offline
// simulator and writes the greedy policy as a versioned Q-table JSON file.
// Training is deterministic — same spec, same seed, byte-identical output —
// which is what lets testdata/qtable_v1.json live in the repository and a
// freshness test assert the committed artifact matches a retrain.
package main

import (
	"flag"
	"fmt"
	"os"

	"disarcloud"
	"disarcloud/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qtrain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("o", "testdata/qtable_v1.json", "output path for the trained Q-table")
		compare = flag.Bool("compare", false, "after training, print the reactive/hybrid/learned comparison")
	)
	flag.Parse()

	spec := disarcloud.DefaultQTableSpec()
	table, err := disarcloud.TrainQTable(spec)
	if err != nil {
		return err
	}
	if err := table.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("trained %d episodes over %d traces; %d states x %d actions -> %s\n",
		spec.Episodes, len(spec.Traces), spec.NumStates(), len(spec.Steps), *out)

	if *compare {
		cmp, err := experiments.RunPolicyComparison(table)
		if err != nil {
			return err
		}
		cmp.Print(os.Stdout)
	}
	return nil
}
